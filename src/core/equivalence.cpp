#include "core/equivalence.hpp"

#include <sstream>

namespace ifsyn::core {

Result<EquivalenceReport> check_equivalence(
    const spec::System& original, const spec::System& refined,
    std::uint64_t max_time, const std::vector<std::string>& observed,
    const obs::ObsContext& obs) {
  sim::SimulationRun orig_run = sim::simulate(original, max_time);
  if (!orig_run.result.status.is_ok()) {
    return Status(orig_run.result.status.code(),
                  "original system: " + orig_run.result.status.message());
  }
  return check_equivalence_with(original, orig_run, refined, max_time,
                                observed, obs);
}

Result<EquivalenceReport> check_equivalence_with(
    const spec::System& original, const sim::SimulationRun& orig_run,
    const spec::System& refined, std::uint64_t max_time,
    const std::vector<std::string>& observed, const obs::ObsContext& obs) {
  if (!orig_run.result.status.is_ok()) {
    return Status(orig_run.result.status.code(),
                  "original system: " + orig_run.result.status.message());
  }
  sim::SimulationRun ref_run =
      sim::simulate(refined, max_time, /*trace=*/false, obs);
  if (!ref_run.result.status.is_ok()) {
    return Status(ref_run.result.status.code(),
                  "refined system: " + ref_run.result.status.message());
  }

  EquivalenceReport report;
  report.original = orig_run.result;
  report.refined = ref_run.result;
  report.original_time = orig_run.result.end_time;
  report.refined_time = ref_run.result.end_time;

  // Process completion: every one-shot process of the original must
  // complete in the refined system too (server processes are new and run
  // forever; they are not checked).
  for (const auto& proc : original.processes()) {
    const sim::ProcessStats* orig_stats =
        orig_run.result.find(proc->name);
    const sim::ProcessStats* ref_stats = ref_run.result.find(proc->name);
    if (!orig_stats || !orig_stats->completed) continue;
    if (!ref_stats) {
      report.mismatches.push_back("process " + proc->name +
                                  " missing from refined system");
      continue;
    }
    if (!ref_stats->completed) {
      report.mismatches.push_back("process " + proc->name +
                                  " did not complete in the refined system");
    }
  }

  // Variable state diff.
  std::vector<std::string> names = observed;
  if (names.empty()) {
    for (const auto& v : original.variables()) {
      if (refined.find_variable(v->name)) names.push_back(v->name);
    }
  }
  for (const std::string& name : names) {
    if (!original.find_variable(name) || !refined.find_variable(name)) {
      report.mismatches.push_back("observed variable " + name +
                                  " missing from one system");
      continue;
    }
    const spec::Value& a = orig_run.interpreter->value_of(name);
    const spec::Value& b = ref_run.interpreter->value_of(name);
    if (a.type() != b.type()) {
      report.mismatches.push_back("variable " + name + " changed type");
      continue;
    }
    for (int i = 0; i < a.size(); ++i) {
      if (a.at(i) != b.at(i)) {
        std::ostringstream os;
        os << "variable " << name;
        if (a.is_array()) os << "(" << i << ")";
        os << ": original=" << a.at(i).to_hex_string()
           << " refined=" << b.at(i).to_hex_string();
        report.mismatches.push_back(os.str());
      }
    }
  }

  report.equivalent = report.mismatches.empty();
  return report;
}

}  // namespace ifsyn::core
