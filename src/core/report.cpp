#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace ifsyn::core {

namespace {

void render_channels(std::ostringstream& os, const spec::System& system) {
  os << "## Channels\n\n";
  if (system.channels().empty()) {
    os << "_No cross-module channels._\n\n";
    return;
  }
  os << "| channel | accessor | dir | variable | message (data+addr) | "
        "accesses | bus | id |\n";
  os << "|---|---|---|---|---|---|---|---|\n";
  for (const auto& ch : system.channels()) {
    os << "| " << ch->name << " | " << ch->accessor << " | "
       << (ch->is_read() ? "read" : "write") << " | " << ch->variable
       << " | " << ch->message_bits() << " (" << ch->data_bits << "+"
       << ch->addr_bits << ") | " << ch->accesses << " | "
       << (ch->bus.empty() ? "-" : ch->bus) << " | ";
    if (ch->id >= 0) {
      os << ch->id;
    } else {
      os << "-";
    }
    os << " |\n";
  }
  os << "\n";
}

void render_buses(std::ostringstream& os, const spec::System& system,
                  const SynthesisReport& synthesis) {
  os << "## Buses\n\n";
  os << "| bus | protocol | data | control | id | total wires | "
        "arbitrated |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const auto& bus : system.buses()) {
    os << "| " << bus->name << " | " << protocol_kind_name(bus->protocol)
       << " | " << bus->width << " | " << bus->control_lines << " | "
       << bus->id_bits << " | " << bus->total_wires() << " | "
       << (bus->arbitrated ? "yes" : "no") << " |\n";
  }
  os << "\n";

  for (const BusReport& report : synthesis.buses) {
    if (report.generation.evaluations.empty()) continue;
    os << "### Width exploration: " << report.bus << "\n\n";
    os << "Selected **" << report.generation.selected_width << "** of "
       << report.generation.total_channel_bits
       << " dedicated channel bits (interconnect reduction "
       << std::fixed << std::setprecision(1)
       << report.generation.interconnect_reduction * 100 << " %).\n\n";
    os << "| width | bus rate (b/clk) | demand (b/clk) | feasible | cost |\n";
    os << "|---|---|---|---|---|\n";
    for (const bus::WidthEvaluation& eval : report.generation.evaluations) {
      os << "| " << eval.width << " | " << std::setprecision(2)
         << eval.bus_rate << " | " << eval.sum_average_rates << " | "
         << (eval.feasible ? "yes" : "no") << " | " << eval.cost;
      if (eval.width == report.generation.selected_width) {
        os << " **(selected)**";
      }
      os << " |\n";
    }
    os << "\n";
  }
  if (!synthesis.split_buses.empty()) {
    os << "_Infeasible-group splitting created " << synthesis.split_buses.size()
       << " additional bus(es) (paper Sec. 3 step 5)._\n\n";
  }
}

void render_equivalence(std::ostringstream& os,
                        const EquivalenceReport& equivalence) {
  os << "## Co-simulation\n\n";
  os << "- original completed at t = " << equivalence.original_time << "\n";
  os << "- refined completed at t = " << equivalence.refined_time;
  if (equivalence.original_time > 0) {
    os << " (" << std::fixed << std::setprecision(2)
       << static_cast<double>(equivalence.refined_time) /
              static_cast<double>(equivalence.original_time)
       << "x)";
  }
  os << "\n- functional equivalence: **"
     << (equivalence.equivalent ? "PASS" : "FAIL") << "**\n";
  for (const std::string& mismatch : equivalence.mismatches) {
    os << "  - mismatch: " << mismatch << "\n";
  }
  std::uint64_t arbitration_wait = 0;
  for (const auto& proc : equivalence.refined.processes) {
    arbitration_wait += proc.bus_wait_cycles;
  }
  if (arbitration_wait > 0) {
    os << "- total arbitration waiting: " << arbitration_wait
       << " cycles\n";
    for (const auto& proc : equivalence.refined.processes) {
      if (proc.bus_wait_cycles == 0) continue;
      os << "  - " << proc.name << ": " << proc.bus_wait_cycles
         << " cycles blocked on bus locks\n";
    }
  }
  // Per-bus load in the refined run: how busy each generated bus was and
  // how much of the wall the requesters spent queued for it.
  for (const sim::BusStats& bus : equivalence.refined.buses) {
    if (bus.acquisitions == 0) continue;
    os << "- bus " << bus.bus << ": " << std::fixed << std::setprecision(1)
       << bus.utilization(equivalence.refined.end_time) * 100
       << " % utilization (" << bus.hold_cycles << " of "
       << equivalence.refined.end_time << " cycles held, "
       << bus.acquisitions << " acquisitions, " << bus.wait_cycles
       << " cycles waited)\n";
  }
  os << "\n";
}

void render_metrics(std::ostringstream& os,
                    const obs::MetricsSnapshot& metrics) {
  const std::string table = metrics.deterministic_markdown();
  if (table.empty()) return;
  os << "## Metrics\n\n";
  os << "_Deterministic metrics only; wall-clock timings live in the "
        "--metrics JSON._\n\n";
  os << table << "\n";
}

void render_traffic(std::ostringstream& os,
                    const std::vector<protocol::BusTraffic>& traffic) {
  os << "## Measured bus traffic\n\n";
  for (const protocol::BusTraffic& bus : traffic) {
    os << "### " << bus.bus << " — " << bus.total_words << " words, "
       << std::fixed << std::setprecision(1) << bus.utilization * 100
       << " % utilization\n\n";
    os << "| channel | transactions | words | first | last | residual |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const protocol::ChannelTraffic& ct : bus.channels) {
      os << "| " << ct.channel << " | " << ct.transactions << " | "
         << ct.words << " | " << ct.first_word_time << " | "
         << ct.last_word_time << " | " << ct.residual_words << " |\n";
    }
    os << "\n";
  }
}

}  // namespace

std::string render_markdown_report(const ReportInputs& inputs) {
  IFSYN_ASSERT_MSG(inputs.refined && inputs.synthesis,
                   "report needs at least the refined system and the "
                   "synthesis report");
  const spec::System& system = *inputs.refined;

  std::ostringstream os;
  os << "# Interface synthesis report: " << system.name() << "\n\n";
  os << "- processes: " << system.processes().size()
     << " (incl. generated servers)\n";
  os << "- variables: " << system.variables().size() << "\n";
  os << "- channels: " << system.channels().size() << "\n";
  os << "- buses: " << system.buses().size() << "\n";
  if (inputs.synthesis->dedicated_data_pins > 0) {
    os << "- data pins: " << inputs.synthesis->merged_data_pins << " merged vs "
       << inputs.synthesis->dedicated_data_pins << " dedicated ("
       << std::fixed << std::setprecision(1)
       << inputs.synthesis->interconnect_reduction * 100 << " % reduction)\n";
  } else {
    // No cross-module channels means no dedicated-pin baseline; the
    // reduction ratio is undefined, so report 0 with a note rather than
    // dividing by zero.
    os << "- data pins: 0 merged vs 0 dedicated "
          "(reduction 0.0 % — no cross-module channels)\n";
  }
  os << "\n";

  render_channels(os, system);
  render_buses(os, system, *inputs.synthesis);
  if (inputs.equivalence) render_equivalence(os, *inputs.equivalence);
  if (inputs.traffic) render_traffic(os, *inputs.traffic);
  if (inputs.metrics) render_metrics(os, *inputs.metrics);
  return os.str();
}

}  // namespace ifsyn::core
