// ifsyn/protocol/procedure_synthesis.hpp
//
// Step 3 of protocol generation (Sec. 4): "For each channel mapped to the
// bus, appropriate send/receive procedures are generated, encapsulating
// the sequence of assignments to the bus control, data and ID lines to
// execute the data transfer."
//
// Per channel we synthesize two procedures:
//
//   requester side (called from the rewritten accessor process):
//     write channel:  Send<CH>([addr,] txdata)   -- Fig. 4's SendCH0
//     read channel:   Receive<CH>([addr,] rxdata)
//
//   server side (called from the generated variable process):
//     Serve<CH>  -- accesses the owned variable directly by name, which
//     is the one structural difference from Fig. 4's parameterized
//     ReceiveCH0 (our procedures are system-global and the variable is
//     addressable, so no array-parameter machinery is needed).
//
// Message framing: a message is address & data concatenated (paper
// Sec. 5: "the two channels each transfer 16 bits of data and 7 bits of
// address"), moved as ceil(bits/width) bus words. When width divides the
// message evenly the generated body is exactly Fig. 4's
// `for J in 1 to K loop ... txdata(8*J-1 downto 8*(J-1)) ...` loop;
// a ragged final word is emitted as an unrolled tail after the loop.
//
// Read transactions are two phases: the requester master-writes the
// address (arrays) or a single dummy request word (scalars), then the
// roles swap and the server streams the data words back. The performance
// estimator models a read as one combined addr+data message (the paper's
// accounting); the simulated two-phase transfer is functionally exact but
// costs ceil(A/w)+ceil(D/w) words instead of ceil((A+D)/w) -- see
// DESIGN.md, "Substitutions".
#pragma once

#include "protocol/protocol_library.hpp"
#include "spec/system.hpp"

namespace ifsyn::protocol {

/// Names of the generated procedures for a channel.
std::string send_proc_name(const spec::Channel& channel);
std::string receive_proc_name(const spec::Channel& channel);
std::string serve_proc_name(const spec::Channel& channel);
/// The requester-side procedure the rewriter calls: Send for write
/// channels, Receive for read channels.
std::string requester_proc_name(const spec::Channel& channel);

struct SynthesisContext {
  WireContext wires;
  bool arbitrate = false;      ///< wrap requester transactions in BusLocks
  std::string lock_name;       ///< bus group name used for the lock
};

/// Emit the word sequence that sends `src_var` (a scalar of `msg_bits`
/// bits in scope) over the bus. Exposed for tests.
spec::Block emit_send_words(const WireContext& ctx, const std::string& src_var,
                            int msg_bits);

/// Emit the word sequence that receives `msg_bits` bits into `dst_var`.
spec::Block emit_receive_words(const WireContext& ctx,
                               const std::string& dst_var, int msg_bits,
                               spec::ExprPtr guard);

/// Requester-side procedure for the channel (Send... or Receive...).
spec::Procedure make_requester_procedure(const SynthesisContext& ctx,
                                         const spec::Channel& channel,
                                         spec::ExprPtr guard,
                                         const BitVector* id);

/// Server-side procedure (Serve...); directly reads/writes
/// `channel.variable`.
spec::Procedure make_server_procedure(const SynthesisContext& ctx,
                                      const spec::Channel& channel,
                                      spec::ExprPtr guard,
                                      const spec::Type& var_type);

}  // namespace ifsyn::protocol
