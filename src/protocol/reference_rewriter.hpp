// ifsyn/protocol/reference_rewriter.hpp
//
// Step 4 of protocol generation (Sec. 4): "References to a variable that
// has been assigned to another system component ... are replaced by the
// corresponding send and receive procedure calls."
//
// Writes map directly:   X <= 32            ->  SendCH0(32)
//                        MEM(60) := COUNT   ->  SendCH3(60, COUNT)
//
// Reads are hoisted through a temporary, exactly Fig. 5's Xtemp: each
// remote read in an expression becomes a fresh local, filled by a
// Receive call emitted before the statement:
//
//   AD := MEM(PC) + 7   ->   ReceiveCH1(PC, MEM_tmp0);
//                            AD := MEM_tmp0 + 7;
//
// Hoisting is safe where the paper's subset evaluates the expression
// once (assignments, if conditions, for bounds, call arguments). A remote
// read in a while condition would need re-receiving every iteration;
// that construct is rejected with kUnsupported rather than silently
// mis-compiled.
#pragma once

#include <map>
#include <string>

#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::protocol {

/// The channels implementing one remote variable's accesses for one
/// accessor process (either may be null if that direction never occurs).
struct RemoteAccess {
  const spec::Channel* read = nullptr;
  const spec::Channel* write = nullptr;
};

/// Rewrites accessor processes for one set of remote variables.
class ReferenceRewriter {
 public:
  /// `remotes` maps variable name -> its channels for the process being
  /// rewritten. Channel pointers must outlive the rewriter.
  explicit ReferenceRewriter(std::map<std::string, RemoteAccess> remotes);

  /// Rewrite the process body in place and append any hoisting
  /// temporaries to its locals. Idempotent when no remote references
  /// remain.
  Status rewrite(spec::Process& process);

 private:
  struct Hoist {
    spec::Block pre;    ///< receives to run before the statement
    spec::Block post;   ///< sends to run after it (out-arg writes)
    std::vector<spec::Variable> new_locals;
  };

  bool is_remote(const std::string& name) const {
    return remotes_.count(name) != 0;
  }

  /// Rewrite an expression, collecting hoisted receives. On error sets
  /// status_ and returns the original expression.
  spec::ExprPtr rewrite_expr(const spec::ExprPtr& expr, Hoist& hoist);

  /// Make a fresh temporary for a remote read and emit its Receive call.
  spec::ExprPtr hoist_read(const std::string& variable, spec::ExprPtr index,
                           Hoist& hoist);

  Result<spec::Block> rewrite_block(const spec::Block& block);
  Result<spec::StmtPtr> rewrite_stmt(const spec::StmtPtr& stmt, Hoist& hoist);

  std::map<std::string, RemoteAccess> remotes_;
  std::vector<spec::Variable> pending_locals_;
  int temp_counter_ = 0;
  Status status_;
};

}  // namespace ifsyn::protocol
