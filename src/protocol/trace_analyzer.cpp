#include "protocol/trace_analyzer.hpp"

#include <algorithm>
#include <map>

#include "estimate/rate_model.hpp"
#include "util/assert.hpp"

namespace ifsyn::protocol {

long long words_per_transaction(const spec::Channel& channel, int width) {
  IFSYN_ASSERT(width > 0);
  if (!channel.is_read()) {
    // One write phase moving addr & data together.
    return estimate::words_per_message(channel.message_bits(), width);
  }
  // Request phase (address words, or one dummy word for scalars) plus the
  // data response.
  const long long request =
      channel.addr_bits > 0
          ? estimate::words_per_message(channel.addr_bits, width)
          : 1;
  return request + estimate::words_per_message(channel.data_bits, width);
}

Result<std::vector<BusTraffic>> analyze_trace(
    const spec::System& system, const std::vector<sim::TraceEntry>& trace,
    std::uint64_t end_time) {
  std::vector<BusTraffic> out;

  for (const auto& bus : system.buses()) {
    if (!bus->generated()) continue;
    if (bus->protocol != spec::ProtocolKind::kFullHandshake) {
      return unsupported("trace analysis supports the full handshake; bus " +
                         bus->name + " uses " +
                         protocol_kind_name(bus->protocol));
    }

    BusTraffic traffic;
    traffic.bus = bus->name;

    // Channel lookup by ID.
    std::map<int, ChannelTraffic> by_id;
    std::map<int, const spec::Channel*> channel_by_id;
    for (const spec::Channel* ch : system.channels_of_bus(*bus)) {
      ChannelTraffic ct;
      ct.channel = ch->name;
      ct.id = ch->id;
      by_id[ch->id] = std::move(ct);
      channel_by_id[ch->id] = ch;
    }

    // Walk the chronological trace, tracking the current ID value and
    // counting START rises. Entries that commit in the same delta cycle
    // are simultaneous — their relative order in the trace is storage
    // order, not causal order — so each (time, delta) batch applies ID
    // updates before interpreting its START rises. The kernel traces
    // value *changes* only and signals initialize to 0, so an absent ID
    // entry means the ID lines still hold 0 — a valid attribution when
    // some channel has ID 0, and an unattributable word (reported, not
    // silently charged to the lowest channel) when none does.
    std::uint64_t current_id = 0;
    bool id_seen = false;
    for (std::size_t i = 0; i < trace.size();) {
      std::size_t j = i;
      while (j < trace.size() && trace[j].time == trace[i].time &&
             trace[j].delta == trace[i].delta) {
        ++j;
      }
      for (std::size_t k = i; k < j; ++k) {
        const sim::TraceEntry& entry = trace[k];
        if (entry.key.signal != bus->name || entry.key.field != "ID") continue;
        current_id = entry.value.to_uint();
        id_seen = true;
      }
      for (std::size_t k = i; k < j; ++k) {
        const sim::TraceEntry& entry = trace[k];
        if (entry.key.signal != bus->name || entry.key.field != "START" ||
            entry.value.to_uint() != 1) {
          continue;
        }
        const int id = static_cast<int>(bus->id_bits > 0 ? current_id : 0);
        auto it = by_id.find(id);
        if (it == by_id.end()) {
          if (bus->id_bits > 0 && !id_seen) {
            return simulation_error(
                "START on bus " + bus->name + " at t=" +
                std::to_string(entry.time) +
                " before any ID was driven, and no channel has ID 0; "
                "word cannot be attributed");
          }
          return simulation_error("trace shows a word for unknown ID " +
                                  std::to_string(id) + " on bus " +
                                  bus->name);
        }
        ChannelTraffic& ct = it->second;
        if (ct.words == 0) ct.first_word_time = entry.time;
        ct.last_word_time = entry.time;
        ++ct.words;
        ++traffic.total_words;
      }
      i = j;
    }

    for (auto& [id, ct] : by_id) {
      const long long per_transaction =
          words_per_transaction(*channel_by_id[id], bus->width);
      ct.transactions = ct.words / per_transaction;
      ct.residual_words = ct.words % per_transaction;
      traffic.channels.push_back(std::move(ct));
    }
    std::sort(traffic.channels.begin(), traffic.channels.end(),
              [](const ChannelTraffic& a, const ChannelTraffic& b) {
                return a.id < b.id;
              });

    const estimate::ProtocolTiming timing =
        estimate::protocol_timing(bus->protocol, bus->fixed_delay_cycles);
    if (end_time > 0) {
      traffic.utilization =
          std::min(1.0, static_cast<double>(traffic.total_words *
                                            timing.cycles_per_word) /
                            static_cast<double>(end_time));
    }
    out.push_back(std::move(traffic));
  }
  return out;
}

}  // namespace ifsyn::protocol
