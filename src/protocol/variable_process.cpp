#include "protocol/variable_process.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ifsyn::protocol {

using namespace spec;

std::string server_process_name(const std::string& variable) {
  return variable + "proc";
}

Process make_variable_process(const std::string& variable,
                              const std::vector<DispatchArm>& arms) {
  IFSYN_ASSERT_MSG(!arms.empty(),
                   "variable " << variable << " has no dispatch arms");

  // Sensitivity: each distinct strobe field once.
  std::vector<SignalFieldId> sensitivity;
  for (const DispatchArm& arm : arms) {
    const bool seen = std::any_of(
        sensitivity.begin(), sensitivity.end(), [&arm](const SignalFieldId& s) {
          return s.signal == arm.strobe.signal && s.field == arm.strobe.field;
        });
    if (!seen) sensitivity.push_back(arm.strobe);
  }

  // Build the if/elsif dispatch chain innermost-first. The final else is
  // the event wait: the server checks for an already-pending request
  // *before* sleeping, so a strobe raised while it was busy serving
  // another channel is never lost (a request raised mid-service produces
  // no further event until its next word -- under the full handshake the
  // strobe is held, so there is none to wait for).
  Block chain{wait_on(std::move(sensitivity))};
  for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
    Block then_body{call(it->serve_procedure, {})};
    for (const auto& stmt : it->post_serve) then_body.push_back(stmt);
    chain = Block{
        if_stmt(it->condition, std::move(then_body), std::move(chain))};
  }

  Process proc;
  proc.name = server_process_name(variable);
  proc.body = Block{forever(std::move(chain))};
  return proc;
}

}  // namespace ifsyn::protocol
