// ifsyn/protocol/id_assignment.hpp
//
// Step 2 of protocol generation (Sec. 4): "If there are N channels
// implemented on the same bus, log2(N) lines will be required to encode
// the channel ID. Unique IDs are assigned to each channel."
#pragma once

#include "spec/expr.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::protocol {

/// ID lines needed for `channel_count` channels: ceil(log2 N); 0 when the
/// bus carries a single channel (no identification needed).
int id_bits_for(int channel_count);

/// Assign sequential IDs (0, 1, 2, ...) to the channels of `bus` in group
/// order -- CH0 -> "00", CH1 -> "01", ... as in Fig. 3 -- and record
/// id_bits on the group. Idempotent.
Status assign_ids(spec::System& system, spec::BusGroup& bus);

/// The ID of `channel` as a bus-word literal of the group's ID width.
BitVector id_literal(const spec::Channel& channel, const spec::BusGroup& bus);

/// Expression `bus.ID = <id>` used to guard receives; null when the bus
/// has no ID lines.
spec::ExprPtr id_guard(const spec::Channel& channel,
                       const spec::BusGroup& bus);

}  // namespace ifsyn::protocol
