#include "protocol/protocol_generator.hpp"

#include <algorithm>
#include <map>

#include "protocol/id_assignment.hpp"
#include "protocol/procedure_synthesis.hpp"
#include "protocol/reference_rewriter.hpp"
#include "protocol/variable_process.hpp"
#include "util/assert.hpp"

namespace ifsyn::protocol {

using namespace spec;

ProtocolGenerator::ProtocolGenerator(ProtocolGenOptions options)
    : options_(options) {}

std::string ProtocolGenerator::hardwired_signal_name(const BusGroup& bus,
                                                     const Channel& channel) {
  return bus.name + "_" + channel.name;
}

int hardwired_width(const Channel& channel) {
  if (!channel.is_read()) return channel.message_bits();
  return std::max(std::max(channel.addr_bits, channel.data_bits), 1);
}

WireContext ProtocolGenerator::wire_context(const BusGroup& bus,
                                            const Channel& channel) {
  WireContext ctx;
  ctx.kind = bus.protocol;
  ctx.fixed_delay_cycles = bus.fixed_delay_cycles;
  if (bus.protocol == ProtocolKind::kHardwiredPort) {
    ctx.bus = hardwired_signal_name(bus, channel);
    ctx.width = hardwired_width(channel);
    ctx.id_bits = 0;
  } else {
    ctx.bus = bus.name;
    ctx.width = bus.width;
    ctx.id_bits = bus.id_bits;
  }
  return ctx;
}

Status ProtocolGenerator::generate_bus(System& system,
                                       const std::string& bus_name) {
  BusGroup* bus = system.find_bus(bus_name);
  if (!bus) return not_found("bus group " + bus_name);
  if (bus->width <= 0 && options_.protocol != ProtocolKind::kHardwiredPort) {
    return failed_precondition(
        "bus " + bus_name +
        " has no width; run bus generation (or set one) first");
  }

  // ---- step 1: protocol selection ----
  bus->protocol = options_.protocol;
  bus->fixed_delay_cycles = options_.fixed_delay_cycles;
  bus->arbitrated = options_.arbitrate;
  const ProtocolSignals sigs = protocol_signals(bus->protocol);
  bus->control_lines = 0;
  for (const auto& f : sigs.control_fields) bus->control_lines += f.width;

  // ---- step 2: ID assignment ----
  if (bus->protocol == ProtocolKind::kHardwiredPort) {
    bus->id_bits = 0;  // dedicated wires identify the channel
    int next_id = 0;
    for (const auto& name : bus->channel_names) {
      Channel* ch = system.find_channel(name);
      if (!ch) return not_found("channel " + name);
      ch->id = next_id++;
    }
  } else {
    IFSYN_RETURN_IF_ERROR(assign_ids(system, *bus));
  }

  // ---- step 3a: bus structure ----
  if (bus->protocol == ProtocolKind::kHardwiredPort) {
    for (const Channel* ch : system.channels_of_bus(*bus)) {
      Signal port;
      port.name = hardwired_signal_name(*bus, *ch);
      port.fields = sigs.control_fields;
      port.fields.push_back(SignalField{"DATA", hardwired_width(*ch)});
      if (system.find_signal(port.name)) {
        return invalid_argument("signal " + port.name + " already exists");
      }
      system.add_signal(std::move(port));
    }
    // For hardwired ports the "width" recorded on the group is the total
    // of the dedicated data lines (pin accounting for Fig. 8-style
    // comparisons).
    bus->width = 0;
    for (const Channel* ch : system.channels_of_bus(*bus)) {
      bus->width += hardwired_width(*ch);
    }
  } else {
    if (system.find_signal(bus->name)) {
      return invalid_argument("signal " + bus->name + " already exists");
    }
    Signal record;
    record.name = bus->name;
    record.fields = sigs.control_fields;  // START[, DONE]
    if (bus->id_bits > 0) {
      record.fields.push_back(SignalField{"ID", bus->id_bits});
    }
    record.fields.push_back(SignalField{"DATA", bus->width});
    system.add_signal(std::move(record));
  }

  if (bus->arbitrated && bus->protocol != ProtocolKind::kHardwiredPort) {
    // The lock is registered with the kernel at simulation setup; nothing
    // to add to the spec beyond the BusLock statements below.
  }

  // ---- step 3b: send/receive/serve procedures per channel ----
  for (const Channel* ch : system.channels_of_bus(*bus)) {
    const Variable* variable = system.find_variable(ch->variable);
    if (!variable) return not_found("variable " + ch->variable);

    SynthesisContext sctx;
    sctx.wires = wire_context(*bus, *ch);
    sctx.arbitrate =
        bus->arbitrated && bus->protocol != ProtocolKind::kHardwiredPort;
    sctx.lock_name = bus->name;

    ExprPtr guard;
    const BitVector* id_ptr = nullptr;
    BitVector id_value;
    if (bus->protocol != ProtocolKind::kHardwiredPort && bus->id_bits > 0) {
      guard = id_guard(*ch, *bus);
      id_value = id_literal(*ch, *bus);
      id_ptr = &id_value;
    }

    Procedure requester =
        make_requester_procedure(sctx, *ch, guard, id_ptr);
    Procedure server = make_server_procedure(sctx, *ch, guard, variable->type);
    if (system.find_procedure(requester.name) ||
        system.find_procedure(server.name)) {
      return invalid_argument("procedures for channel " + ch->name +
                              " already generated");
    }
    system.add_procedure(std::move(requester));
    system.add_procedure(std::move(server));

    if (options_.obs.metrics) {
      obs::MetricsRegistry& reg = *options_.obs.metrics;
      reg.counter("protocol.messages_sliced").add(1);
      // Words each transaction moves over the data lines at this width —
      // the slicing the generated procedures implement.
      const int width = sctx.wires.width;
      if (width > 0) {
        reg.counter("protocol.transfer_words_generated")
            .add(static_cast<std::uint64_t>(
                (ch->message_bits() + width - 1) / width));
      }
      reg.counter("protocol.procedures_generated").add(2);
    }
  }
  if (options_.obs.metrics) {
    options_.obs.metrics->counter("protocol.buses_generated").add(1);
  }

  // ---- step 4: variable-reference update in accessor processes ----
  return rewrite_accessors(system, *bus);
}

Status ProtocolGenerator::rewrite_accessors(System& system,
                                            const BusGroup& bus) {
  // Group this bus's channels by accessor process.
  std::map<std::string, std::map<std::string, RemoteAccess>> by_process;
  for (const Channel* ch : system.channels_of_bus(bus)) {
    RemoteAccess& access = by_process[ch->accessor][ch->variable];
    if (ch->is_read()) {
      if (access.read) {
        return invalid_argument("duplicate read channel for " + ch->variable +
                                " in process " + ch->accessor);
      }
      access.read = ch;
    } else {
      if (access.write) {
        return invalid_argument("duplicate write channel for " +
                                ch->variable + " in process " + ch->accessor);
      }
      access.write = ch;
    }
  }

  for (auto& [process_name, remotes] : by_process) {
    Process* process = system.find_process(process_name);
    if (!process) return not_found("accessor process " + process_name);
    ReferenceRewriter rewriter(remotes);
    IFSYN_RETURN_IF_ERROR(rewriter.rewrite(*process));
    if (options_.obs.metrics) {
      options_.obs.metrics->counter("protocol.accessors_rewritten").add(1);
    }
  }
  return Status::ok();
}

Status ProtocolGenerator::generate_servers(System& system) {
  // Group generated channels by served variable, preserving channel order.
  std::vector<std::string> variable_order;
  std::map<std::string, std::vector<const Channel*>> by_variable;
  for (const auto& ch : system.channels()) {
    if (ch->bus.empty()) continue;
    const BusGroup* bus = system.find_bus(ch->bus);
    if (!bus || !bus->generated()) continue;
    if (!system.find_procedure(serve_proc_name(*ch))) continue;
    auto [it, inserted] = by_variable.try_emplace(ch->variable);
    if (inserted) variable_order.push_back(ch->variable);
    it->second.push_back(ch.get());
  }

  for (const std::string& variable : variable_order) {
    const std::string proc_name = server_process_name(variable);
    if (system.find_process(proc_name)) {
      return invalid_argument("server process " + proc_name +
                              " already exists");
    }

    std::vector<DispatchArm> arms;
    for (const Channel* ch : by_variable[variable]) {
      const BusGroup* bus = system.find_bus(ch->bus);
      IFSYN_ASSERT(bus);
      const WireContext ctx = wire_context(*bus, *ch);
      const ProtocolSignals sigs = protocol_signals(ctx.kind);

      ExprPtr condition = dispatch_condition(ctx);
      if (bus->protocol != ProtocolKind::kHardwiredPort &&
          bus->id_bits > 0) {
        condition = land(std::move(condition), id_guard(*ch, *bus));
      }
      // Strobe protocols: wait out the requester's phase epilogue before
      // re-checking for new work (see DispatchArm::post_serve).
      Block post_serve;
      if (sigs.ack_field.empty()) {
        post_serve.push_back(
            wait_until(eq(sig(ctx.bus, sigs.strobe_field), lit(0))));
      }
      arms.push_back(DispatchArm{std::move(condition), serve_proc_name(*ch),
                                 SignalFieldId{ctx.bus, sigs.strobe_field},
                                 std::move(post_serve)});
    }

    Process server = make_variable_process(variable, arms);
    system.add_process(std::move(server));
    if (options_.obs.metrics) {
      options_.obs.metrics->counter("protocol.servers_generated").add(1);
    }

    // Keep the module map consistent: the server lives where its
    // variable lives.
    if (const Module* mod = system.module_of_variable(variable)) {
      system.find_module(mod->name)->process_names.push_back(proc_name);
    }
  }
  return Status::ok();
}

Status ProtocolGenerator::generate_all(System& system) {
  for (const auto& bus : system.buses()) {
    IFSYN_RETURN_IF_ERROR(generate_bus(system, bus->name));
  }
  return generate_servers(system);
}

}  // namespace ifsyn::protocol
