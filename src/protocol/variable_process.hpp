// ifsyn/protocol/variable_process.hpp
//
// Step 5 of protocol generation (Sec. 4): "In order to obtain a
// simulatable system specification, a separate behavior is created for
// each group of variables accessed over a channel" -- Fig. 5's Xproc and
// MEMproc.
//
// The generated server process is a forever loop that sleeps on the
// control strobes of every bus its variable is reachable over, then
// dispatches on the ID lines to the matching Serve<CH> procedure:
//
//   process MEMproc
//     loop
//       wait on B.START;
//       if (B.START = '1') then
//         if    (B.ID = "10") then ServeCH2;
//         elsif (B.ID = "11") then ServeCH3;
//         end if;
//       end if;
//     end loop;
//
// (Fig. 5 waits on B.ID instead; that formulation misses back-to-back
// transactions on the same channel, whose ID assignment produces no
// event -- see protocol_library.hpp.)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "protocol/protocol_library.hpp"
#include "spec/system.hpp"

namespace ifsyn::protocol {

/// Name of the server process generated for a variable ("X" -> "Xproc").
std::string server_process_name(const std::string& variable);

/// One dispatch arm: when `condition` holds after a strobe event, run the
/// channel's Serve procedure, then run `post_serve`.
///
/// `post_serve` closes the re-dispatch race of strobe protocols: their
/// sender holds the last word's strobe level for the protocol delay, so a
/// dispatcher that re-checks immediately after Serve returns would see the
/// *same* word as a new transaction and desynchronize. The generator fills
/// post_serve with `wait until <strobe> = 0` (the requester's phase
/// epilogue) for strobe protocols; the full handshake needs nothing
/// because its Serve only returns after START has fallen.
struct DispatchArm {
  spec::ExprPtr condition;
  std::string serve_procedure;
  spec::SignalFieldId strobe;  ///< sensitivity entry for the wait-on
  spec::Block post_serve;      ///< statements after the Serve call
};

/// Build the server process for `variable` from its dispatch arms (one
/// per channel, across all buses the variable is accessed over).
spec::Process make_variable_process(const std::string& variable,
                                    const std::vector<DispatchArm>& arms);

}  // namespace ifsyn::protocol
