#include "protocol/procedure_synthesis.hpp"

#include "util/assert.hpp"

namespace ifsyn::protocol {

using namespace spec;

std::string send_proc_name(const Channel& channel) {
  return "Send" + channel.name;
}
std::string receive_proc_name(const Channel& channel) {
  return "Receive" + channel.name;
}
std::string serve_proc_name(const Channel& channel) {
  return "Serve" + channel.name;
}
std::string requester_proc_name(const Channel& channel) {
  return channel.is_read() ? receive_proc_name(channel)
                           : send_proc_name(channel);
}

namespace {

/// Append `extra` to `block`.
void extend(Block& block, Block extra) {
  for (auto& stmt : extra) block.push_back(std::move(stmt));
}

/// Word J's slice bounds of a message variable: (W*J-1 downto W*(J-1)),
/// with J an in-scope loop variable (Fig. 4's index arithmetic).
ExprPtr word_hi(int width) {
  return sub(mul(lit(width), var("J")), lit(1));
}
ExprPtr word_lo(int width) {
  return mul(lit(width), sub(var("J"), lit(1)));
}

/// Strobe parity of word J (loop form) or of a fixed word index.
ExprPtr loop_parity() { return mod(var("J"), lit(2)); }
ExprPtr fixed_parity(long long word_index) { return lit(word_index % 2); }

}  // namespace

Block emit_send_words(const WireContext& ctx, const std::string& src_var,
                      int msg_bits) {
  IFSYN_ASSERT(msg_bits > 0 && ctx.width > 0);
  const int full_words = msg_bits / ctx.width;
  const int tail_bits = msg_bits % ctx.width;
  Block out;

  if (full_words >= 1) {
    Block body = sender_word(
        ctx, slice(var(src_var), word_hi(ctx.width), word_lo(ctx.width)),
        loop_parity());
    out.push_back(for_stmt("J", lit(1), lit(full_words), std::move(body)));
  }
  if (tail_bits > 0) {
    extend(out, sender_word(ctx,
                            slice(var(src_var), lit(msg_bits - 1),
                                  lit(full_words * ctx.width)),
                            fixed_parity(full_words + 1)));
  }
  return out;
}

Block emit_receive_words(const WireContext& ctx, const std::string& dst_var,
                         int msg_bits, ExprPtr guard) {
  IFSYN_ASSERT(msg_bits > 0 && ctx.width > 0);
  const int full_words = msg_bits / ctx.width;
  const int tail_bits = msg_bits % ctx.width;
  Block out;

  if (full_words >= 1) {
    Block body = receiver_word(
        ctx, lv_slice(dst_var, word_hi(ctx.width), word_lo(ctx.width)), guard,
        loop_parity());
    out.push_back(for_stmt("J", lit(1), lit(full_words), std::move(body)));
  }
  if (tail_bits > 0) {
    extend(out,
           receiver_word(ctx,
                         lv_slice(dst_var, lit(msg_bits - 1),
                                  lit(full_words * ctx.width)),
                         guard, fixed_parity(full_words + 1)));
  }
  return out;
}

Procedure make_requester_procedure(const SynthesisContext& ctx,
                                   const Channel& channel, ExprPtr guard,
                                   const BitVector* id) {
  const WireContext& w = ctx.wires;
  const bool is_array = channel.addr_bits > 0;

  Procedure proc;
  proc.name = requester_proc_name(channel);

  Block body;
  if (ctx.arbitrate) body.push_back(bus_acquire(ctx.lock_name));
  if (id != nullptr) {
    body.push_back(sig_assign(w.bus, "ID", bits(*id)));
  }

  if (!channel.is_read()) {
    // ---- Send<CH>([addr,] txdata): one write phase ----
    if (is_array) {
      proc.params.push_back(
          Param{"addr", ParamDir::kIn, Type::bits(channel.addr_bits)});
    }
    proc.params.push_back(
        Param{"txdata", ParamDir::kIn, Type::bits(channel.data_bits)});

    std::string src = "txdata";
    if (is_array) {
      // msg := addr & txdata (address in the high bits)
      proc.locals.emplace_back("msg", Type::bits(channel.message_bits()));
      body.push_back(assign("msg", concat(var("addr"), var("txdata"))));
      src = "msg";
    }
    extend(body, emit_send_words(w, src, is_array ? channel.message_bits()
                                                  : channel.data_bits));
    extend(body, phase_epilogue(w));
  } else {
    // ---- Receive<CH>([addr,] rxdata): request phase then response ----
    if (is_array) {
      proc.params.push_back(
          Param{"addr", ParamDir::kIn, Type::bits(channel.addr_bits)});
    }
    proc.params.push_back(
        Param{"rxdata", ParamDir::kOut, Type::bits(channel.data_bits)});

    if (is_array) {
      extend(body, emit_send_words(w, "addr", channel.addr_bits));
    } else {
      // Scalars have no address; a single dummy word carries the request
      // (and the ID lines name the channel being read).
      extend(body, sender_word(w, lit(0), fixed_parity(1)));
    }
    extend(body, phase_epilogue(w));
    // Response: roles swap; the server now drives DATA and the strobe.
    extend(body,
           emit_receive_words(w, "rxdata", channel.data_bits, guard));
    // Wait out the server's strobe release before the caller can start
    // another transaction (see response_epilogue's contract).
    extend(body, response_epilogue(w));
  }

  if (ctx.arbitrate) body.push_back(bus_release(ctx.lock_name));
  proc.body = std::move(body);
  return proc;
}

Procedure make_server_procedure(const SynthesisContext& ctx,
                                const Channel& channel, ExprPtr guard,
                                const Type& var_type) {
  const WireContext& w = ctx.wires;
  const bool is_array = channel.addr_bits > 0;
  IFSYN_ASSERT_MSG(is_array == var_type.is_array(),
                   "channel " << channel.name
                              << " address bits disagree with variable type");
  const ProtocolSignals sigs = protocol_signals(w.kind);

  Procedure proc;
  proc.name = serve_proc_name(channel);

  Block body;
  if (!channel.is_read()) {
    // ---- serve a write: receive message, store into the variable ----
    proc.locals.emplace_back("msg", Type::bits(channel.message_bits()));
    extend(body,
           emit_receive_words(w, "msg", channel.message_bits(), guard));
    if (is_array) {
      // variable(addr) := data, unpacking msg = addr & data
      body.push_back(assign(
          lv_idx(channel.variable,
                 slice(var("msg"), lit(channel.message_bits() - 1),
                       lit(channel.data_bits))),
          slice(var("msg"), lit(channel.data_bits - 1), lit(0))));
    } else {
      body.push_back(assign(channel.variable, var("msg")));
    }
  } else {
    // ---- serve a read: receive the request, send the data back ----
    if (is_array) {
      proc.locals.emplace_back("addr", Type::bits(channel.addr_bits));
      extend(body, emit_receive_words(w, "addr", channel.addr_bits, guard));
    } else {
      proc.locals.emplace_back("req", Type::bits(w.width));
      extend(body, receiver_word(w, lv("req"), guard, fixed_parity(1)));
    }
    // Wait out the requester's phase epilogue (strobe back to idle), then
    // a full turnaround so the requester is guaranteed to be listening
    // before the first response strobe edge (strobe protocols pace words
    // blindly -- a word driven before the requester's own epilogue wait
    // finished would be lost).
    body.push_back(
        wait_until(eq(sig(w.bus, sigs.strobe_field), lit(0))));
    extend(body, bus_turnaround(w));

    // Snapshot the data into a message local, then stream it.
    proc.locals.emplace_back("msg", Type::bits(channel.data_bits));
    if (is_array) {
      body.push_back(assign("msg", aref(channel.variable, var("addr"))));
    } else {
      body.push_back(assign("msg", var(channel.variable)));
    }
    extend(body, emit_send_words(w, "msg", channel.data_bits));
    extend(body, phase_epilogue(w));
  }

  proc.body = std::move(body);
  return proc;
}

}  // namespace ifsyn::protocol
