// ifsyn/protocol/trace_analyzer.hpp
//
// Post-simulation measurement: reconstruct the bus traffic of a refined
// system from its recorded signal trace. For every full-handshake bus the
// analyzer decodes each START rise as one bus word, attributes it to the
// channel selected by the ID lines at that instant, and aggregates words
// into transactions using the generated framing (write: ceil(msg/width)
// words; read: request words plus response words).
//
// This is the observability the paper's evaluation relies on informally
// ("the bus is never idle", per-process transfer rates): it turns the
// waveform back into per-channel transaction counts, word counts and bus
// utilization, measured rather than estimated.
//
// Supported for the full-handshake protocol (the paper's); strobe
// protocols encode words as level toggles and are reported as
// kUnsupported.
#pragma once

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::protocol {

struct ChannelTraffic {
  std::string channel;
  int id = -1;
  long long words = 0;         ///< bus words attributed to this channel
  long long transactions = 0;  ///< complete message transfers
  std::uint64_t first_word_time = 0;
  std::uint64_t last_word_time = 0;
  /// Words that do not form a whole number of transactions (should be 0;
  /// nonzero means a transfer was cut off or corrupted).
  long long residual_words = 0;
};

struct BusTraffic {
  std::string bus;
  long long total_words = 0;
  /// Fraction of the simulated span the bus spent moving words
  /// (2 cycles/word under the full handshake).
  double utilization = 0;
  std::vector<ChannelTraffic> channels;

  const ChannelTraffic* find(const std::string& channel) const {
    for (const auto& c : channels) {
      if (c.channel == channel) return &c;
    }
    return nullptr;
  }
};

/// Words one complete transaction of `channel` occupies on a `width`-bit
/// bus under the generated full-handshake framing.
long long words_per_transaction(const spec::Channel& channel, int width);

/// Decode the traffic of every generated full-handshake bus in `system`
/// from `trace` (chronological, as Kernel::trace() returns).
Result<std::vector<BusTraffic>> analyze_trace(
    const spec::System& system, const std::vector<sim::TraceEntry>& trace,
    std::uint64_t end_time);

}  // namespace ifsyn::protocol
