#include "protocol/reference_rewriter.hpp"

#include "protocol/procedure_synthesis.hpp"
#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::protocol {

using namespace spec;

ReferenceRewriter::ReferenceRewriter(std::map<std::string, RemoteAccess> remotes)
    : remotes_(std::move(remotes)) {}

Status ReferenceRewriter::rewrite(Process& process) {
  status_ = Status::ok();
  pending_locals_.clear();
  temp_counter_ = 0;

  Result<Block> body = rewrite_block(process.body);
  if (!body.is_ok()) return body.status();

  process.body = std::move(body).value();
  for (auto& local : pending_locals_) {
    process.locals.push_back(std::move(local));
  }
  pending_locals_.clear();
  return Status::ok();
}

ExprPtr ReferenceRewriter::hoist_read(const std::string& variable,
                                      ExprPtr index, Hoist& hoist) {
  const RemoteAccess& access = remotes_.at(variable);
  if (access.read == nullptr) {
    status_ = unsupported("process reads remote variable '" + variable +
                          "' but no read channel exists for it");
    return var(variable);
  }
  const Channel& ch = *access.read;
  const std::string temp =
      variable + "_tmp" + std::to_string(temp_counter_++);
  hoist.new_locals.emplace_back(temp, Type::bits(ch.data_bits));

  std::vector<CallArg> args;
  if (ch.addr_bits > 0) {
    IFSYN_ASSERT_MSG(index, "array channel " << ch.name
                                             << " read without an index");
    args.emplace_back(std::move(index));
  }
  args.emplace_back(lv(temp));
  hoist.pre.push_back(call(receive_proc_name(ch), std::move(args)));
  return var(temp);
}

ExprPtr ReferenceRewriter::rewrite_expr(const ExprPtr& expr, Hoist& hoist) {
  if (!status_.is_ok()) return expr;

  if (const auto* v = expr->as<VarRef>()) {
    if (!is_remote(v->name)) return expr;
    return hoist_read(v->name, nullptr, hoist);
  }
  if (const auto* a = expr->as<ArrayRef>()) {
    ExprPtr index = rewrite_expr(a->index, hoist);
    if (!is_remote(a->name)) {
      return index == a->index ? expr : aref(a->name, std::move(index));
    }
    return hoist_read(a->name, std::move(index), hoist);
  }
  if (const auto* s = expr->as<SliceExpr>()) {
    ExprPtr base = rewrite_expr(s->base, hoist);
    ExprPtr hi = rewrite_expr(s->hi, hoist);
    ExprPtr lo = rewrite_expr(s->lo, hoist);
    if (base == s->base && hi == s->hi && lo == s->lo) return expr;
    return slice(std::move(base), std::move(hi), std::move(lo));
  }
  if (const auto* u = expr->as<UnaryExpr>()) {
    ExprPtr operand = rewrite_expr(u->operand, hoist);
    return operand == u->operand ? expr : un(u->op, std::move(operand));
  }
  if (const auto* b = expr->as<BinaryExpr>()) {
    ExprPtr lhs = rewrite_expr(b->lhs, hoist);
    ExprPtr rhs = rewrite_expr(b->rhs, hoist);
    if (lhs == b->lhs && rhs == b->rhs) return expr;
    return bin_op(b->op, std::move(lhs), std::move(rhs));
  }
  // Literals and signal reads never reference remote variables.
  return expr;
}

Result<StmtPtr> ReferenceRewriter::rewrite_stmt(const StmtPtr& stmt,
                                                Hoist& hoist) {
  if (const auto* s = stmt->as<VarAssign>()) {
    ExprPtr value = rewrite_expr(s->value, hoist);

    if (is_remote(s->target.name)) {
      // Remote write: becomes Send<CH>([index,] value). Fig. 5's
      // `X <= 32` -> `SendCH0(32)`.
      if (s->target.slice_hi) {
        return Status(unsupported(
            "bit-slice write to remote variable '" + s->target.name +
            "' is not supported (read-modify-write over a channel)"));
      }
      const RemoteAccess& access = remotes_.at(s->target.name);
      if (access.write == nullptr) {
        return Status(unsupported("process writes remote variable '" +
                                  s->target.name +
                                  "' but no write channel exists for it"));
      }
      const Channel& ch = *access.write;
      std::vector<CallArg> args;
      if (ch.addr_bits > 0) {
        if (!s->target.index) {
          return Status(unsupported("whole-array write to remote '" +
                                    s->target.name + "'"));
        }
        args.emplace_back(rewrite_expr(s->target.index, hoist));
      }
      args.emplace_back(std::move(value));
      if (!status_.is_ok()) return status_;
      return StmtPtr(call(send_proc_name(ch), std::move(args)));
    }

    LValue target = s->target;
    if (target.index) target.index = rewrite_expr(target.index, hoist);
    if (target.slice_hi) {
      target.slice_hi = rewrite_expr(target.slice_hi, hoist);
      target.slice_lo = rewrite_expr(target.slice_lo, hoist);
    }
    if (!status_.is_ok()) return status_;
    return StmtPtr(assign(std::move(target), std::move(value)));
  }

  if (const auto* s = stmt->as<SignalAssign>()) {
    ExprPtr value = rewrite_expr(s->value, hoist);
    if (!status_.is_ok()) return status_;
    return StmtPtr(sig_assign(s->signal, s->field, std::move(value)));
  }

  if (const auto* s = stmt->as<WaitUntil>()) {
    for (const auto& [name, access] : remotes_) {
      if (expr_reads_variable(*s->cond, name)) {
        return Status(unsupported(
            "wait-until condition reads remote variable '" + name +
            "'; conditions must be re-evaluated on every event and cannot "
            "be hoisted through a channel"));
      }
    }
    return stmt;
  }

  if (const auto* s = stmt->as<WaitFor>()) {
    ExprPtr cycles = rewrite_expr(s->cycles, hoist);
    if (!status_.is_ok()) return status_;
    return StmtPtr(wait_for(std::move(cycles)));
  }

  if (const auto* s = stmt->as<IfStmt>()) {
    ExprPtr cond = rewrite_expr(s->cond, hoist);
    Result<Block> then_body = rewrite_block(s->then_body);
    if (!then_body.is_ok()) return then_body.status();
    Result<Block> else_body = rewrite_block(s->else_body);
    if (!else_body.is_ok()) return else_body.status();
    if (!status_.is_ok()) return status_;
    return StmtPtr(if_stmt(std::move(cond), std::move(then_body).value(),
                           std::move(else_body).value()));
  }

  if (const auto* s = stmt->as<ForStmt>()) {
    ExprPtr from = rewrite_expr(s->from, hoist);
    ExprPtr to = rewrite_expr(s->to, hoist);
    Result<Block> body = rewrite_block(s->body);
    if (!body.is_ok()) return body.status();
    if (!status_.is_ok()) return status_;
    return StmtPtr(for_stmt(s->var, std::move(from), std::move(to),
                            std::move(body).value()));
  }

  if (const auto* s = stmt->as<WhileStmt>()) {
    for (const auto& [name, access] : remotes_) {
      if (expr_reads_variable(*s->cond, name)) {
        return Status(unsupported(
            "while condition reads remote variable '" + name +
            "'; it is re-evaluated per iteration and cannot be hoisted"));
      }
    }
    Result<Block> body = rewrite_block(s->body);
    if (!body.is_ok()) return body.status();
    return StmtPtr(while_stmt(s->cond, std::move(body).value()));
  }

  if (const auto* s = stmt->as<ForeverStmt>()) {
    Result<Block> body = rewrite_block(s->body);
    if (!body.is_ok()) return body.status();
    return StmtPtr(forever(std::move(body).value()));
  }

  if (const auto* s = stmt->as<ProcCall>()) {
    std::vector<CallArg> args;
    for (const CallArg& arg : s->args) {
      if (const auto* e = std::get_if<ExprPtr>(&arg)) {
        args.emplace_back(rewrite_expr(*e, hoist));
        continue;
      }
      LValue out_arg = std::get<LValue>(arg);
      if (is_remote(out_arg.name)) {
        // Out-arg targeting a remote variable: route through a temp and
        // send it after the call returns.
        const RemoteAccess& access = remotes_.at(out_arg.name);
        if (access.write == nullptr) {
          return Status(unsupported("out argument writes remote '" +
                                    out_arg.name + "' with no write channel"));
        }
        const Channel& ch = *access.write;
        const std::string temp =
            out_arg.name + "_tmp" + std::to_string(temp_counter_++);
        hoist.new_locals.emplace_back(temp, Type::bits(ch.data_bits));
        std::vector<CallArg> send_args;
        if (ch.addr_bits > 0) {
          if (!out_arg.index) {
            return Status(unsupported("whole-array out argument to remote '" +
                                      out_arg.name + "'"));
          }
          send_args.emplace_back(rewrite_expr(out_arg.index, hoist));
        }
        send_args.emplace_back(var(temp));
        hoist.post.push_back(call(send_proc_name(ch), std::move(send_args)));
        args.emplace_back(lv(temp));
      } else {
        if (out_arg.index) out_arg.index = rewrite_expr(out_arg.index, hoist);
        args.emplace_back(std::move(out_arg));
      }
    }
    if (!status_.is_ok()) return status_;
    return StmtPtr(call(s->proc, std::move(args)));
  }

  // WaitOn, BusLock: nothing to rewrite.
  return stmt;
}

Result<Block> ReferenceRewriter::rewrite_block(const Block& block) {
  Block out;
  for (const StmtPtr& stmt : block) {
    Hoist hoist;
    Result<StmtPtr> rewritten = rewrite_stmt(stmt, hoist);
    if (!rewritten.is_ok()) return rewritten.status();
    if (!status_.is_ok()) return status_;
    for (auto& pre : hoist.pre) out.push_back(std::move(pre));
    out.push_back(std::move(rewritten).value());
    for (auto& post : hoist.post) out.push_back(std::move(post));
    for (auto& local : hoist.new_locals) {
      pending_locals_.push_back(std::move(local));
    }
  }
  return out;
}

}  // namespace ifsyn::protocol
