// ifsyn/protocol/protocol_library.hpp
//
// Word-level building blocks of the generated protocols (paper Sec. 4
// step 1: "full-handshake, half-handshake, fixed-delay and even hardwired
// ports").
//
// Every message moves as a sequence of bus-word transfers with two roles:
// a *sender* (drives DATA and the control strobe) and a *receiver*
// (samples DATA). The library emits the IR statements for one word in
// either role; procedure synthesis stitches words into whole messages.
//
// Protocol disciplines:
//
//   full-handshake (Fig. 4): four-phase START/DONE rendezvous,
//     2 cycles/word minimum. Safe for arbitrarily slow receivers.
//
//   half-handshake / fixed-delay: a single strobe line; the sender tags
//     word J with strobe parity (J mod 2) and holds each word for the
//     protocol's cycle count (1 for half-handshake, `fixed_delay_cycles`
//     otherwise); the receiver is assumed to keep up (it samples in zero
//     simulated time, which generated receivers always do). A trailing
//     strobe reset closes each phase so the next transaction always
//     produces a fresh edge.
//
//   hardwired-port: the full handshake on dedicated message-wide wires
//     (one signal per channel, no ID lines, single-word messages).
//
// Deviation from the paper, documented in DESIGN.md: dispatchers wait on
// the control strobe, not on `B.ID` as Fig. 5 does. Two back-to-back
// transactions on the same channel leave ID unchanged -- no event -- so
// the paper's formulation deadlocks on the second transaction; waiting on
// the strobe (which toggles every word) is the repaired equivalent.
#pragma once

#include <string>

#include "spec/stmt.hpp"
#include "spec/system.hpp"

namespace ifsyn::protocol {

/// Static description of how a bus implements one protocol.
struct ProtocolSignals {
  /// Control fields to add to the bus record (besides ID and DATA).
  std::vector<spec::SignalField> control_fields;
  /// Field name of the sender's strobe (START for handshakes).
  std::string strobe_field;
  /// Field name of the receiver's acknowledge; empty when the protocol
  /// has no acknowledge (strobe disciplines).
  std::string ack_field;
};

ProtocolSignals protocol_signals(spec::ProtocolKind kind);

/// Everything word emission needs to know about the bus it targets.
struct WireContext {
  std::string bus;   ///< signal name, e.g. "B"
  int width = 0;     ///< DATA field width
  int id_bits = 0;   ///< ID field width; 0 = no ID field
  spec::ProtocolKind kind = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;

  /// Cycles the sender holds one word (the protocol's per-word delay).
  int hold_cycles() const;
};

/// Statements for the sender role: present `word` on DATA and run one
/// word's control discipline. `parity` is the word-index parity
/// expression for strobe protocols (ignored by the full handshake).
spec::Block sender_word(const WireContext& ctx, spec::ExprPtr word,
                        spec::ExprPtr parity);

/// Statements for the receiver role: wait for one word and store DATA
/// into `target`. `id_guard` (may be null) is ANDed into the wait
/// condition -- the "(B.ID = "00")" of Fig. 4's ReceiveCH0.
spec::Block receiver_word(const WireContext& ctx, spec::LValue target,
                          spec::ExprPtr id_guard, spec::ExprPtr parity);

/// Statements a sender runs after the last word of a phase: for strobe
/// protocols, reset the strobe so the next phase starts with an edge;
/// no-op for the full handshake.
spec::Block phase_epilogue(const WireContext& ctx);

/// Fixed bus-turnaround delay for strobe protocols (2 hold cycles): the
/// time from one side's last strobe activity until the other side is
/// guaranteed to be listening again. Strobe protocols have no acknowledge
/// wire, so role swaps must be separated by this worst-case settle time;
/// the full handshake's rendezvous makes it unnecessary (empty block).
spec::Block bus_turnaround(const WireContext& ctx);

/// Statements the *requester* runs after receiving the last response word
/// of a read. Strobe protocols have no acknowledge, so without this the
/// requester could launch its next transaction while the server is still
/// driving its own phase_epilogue -- the two would overwrite each other's
/// strobe and deadlock. Waiting for the server's strobe release plus one
/// hold cycle guarantees the server is back at its dispatcher. No-op for
/// the full handshake (its DONE/START rendezvous already orders this).
spec::Block response_epilogue(const WireContext& ctx);

/// The condition a variable-process dispatcher uses to detect "a word is
/// being offered on this bus right now" (strobe high / first parity).
spec::ExprPtr dispatch_condition(const WireContext& ctx);

}  // namespace ifsyn::protocol
