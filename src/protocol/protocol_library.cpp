#include "protocol/protocol_library.hpp"

#include "util/assert.hpp"

namespace ifsyn::protocol {

using namespace spec;

ProtocolSignals protocol_signals(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFullHandshake:
    case ProtocolKind::kHardwiredPort:
      return ProtocolSignals{{{"START", 1}, {"DONE", 1}}, "START", "DONE"};
    case ProtocolKind::kHalfHandshake:
    case ProtocolKind::kFixedDelay:
      return ProtocolSignals{{{"START", 1}}, "START", ""};
  }
  IFSYN_ASSERT(false);
  return {};
}

int WireContext::hold_cycles() const {
  switch (kind) {
    case ProtocolKind::kFullHandshake:
    case ProtocolKind::kHardwiredPort:
      return 1;  // per phase edge; two edges per word = 2 cycles minimum
    case ProtocolKind::kHalfHandshake:
      return 1;
    case ProtocolKind::kFixedDelay:
      return fixed_delay_cycles;
  }
  IFSYN_ASSERT(false);
  return 1;
}

namespace {

bool is_strobe_protocol(ProtocolKind kind) {
  return kind == ProtocolKind::kHalfHandshake ||
         kind == ProtocolKind::kFixedDelay;
}

}  // namespace

Block sender_word(const WireContext& ctx, ExprPtr word, ExprPtr parity) {
  const ProtocolSignals sigs = protocol_signals(ctx.kind);
  Block out;
  out.push_back(sig_assign(ctx.bus, "DATA", std::move(word)));

  if (is_strobe_protocol(ctx.kind)) {
    // Tag the word with its index parity and hold it for the protocol's
    // delay; no acknowledge.
    IFSYN_ASSERT_MSG(parity, "strobe protocols need a word parity expr");
    out.push_back(sig_assign(ctx.bus, sigs.strobe_field, std::move(parity)));
    out.push_back(wait_for(ctx.hold_cycles()));
    return out;
  }

  // Full handshake (Fig. 4's SendCH0 body):
  //   B.START <= '1'; wait until B.DONE = '1';
  //   B.START <= '0'; wait until B.DONE = '0';
  // with one clock of settling per edge, making the 2-cycles-per-word
  // minimum of Eq. 2.
  out.push_back(sig_assign(ctx.bus, sigs.strobe_field, lit(1)));
  out.push_back(wait_for(ctx.hold_cycles()));
  out.push_back(wait_until(eq(sig(ctx.bus, sigs.ack_field), lit(1))));
  out.push_back(sig_assign(ctx.bus, sigs.strobe_field, lit(0)));
  out.push_back(wait_for(ctx.hold_cycles()));
  out.push_back(wait_until(eq(sig(ctx.bus, sigs.ack_field), lit(0))));
  return out;
}

Block receiver_word(const WireContext& ctx, LValue target, ExprPtr id_guard,
                    ExprPtr parity) {
  const ProtocolSignals sigs = protocol_signals(ctx.kind);
  Block out;

  if (is_strobe_protocol(ctx.kind)) {
    IFSYN_ASSERT_MSG(parity, "strobe protocols need a word parity expr");
    ExprPtr cond = eq(sig(ctx.bus, sigs.strobe_field), std::move(parity));
    if (id_guard) cond = land(std::move(cond), std::move(id_guard));
    out.push_back(wait_until(std::move(cond)));
    out.push_back(assign(std::move(target), sig(ctx.bus, "DATA")));
    return out;
  }

  // Full handshake (Fig. 4's ReceiveCH0 body):
  //   wait until (B.START = '1') and (B.ID = "00");
  //   rxdata(...) := B.DATA; B.DONE <= '1';
  //   wait until (B.START = '0'); B.DONE <= '0';
  ExprPtr cond = eq(sig(ctx.bus, sigs.strobe_field), lit(1));
  if (id_guard) cond = land(std::move(cond), std::move(id_guard));
  out.push_back(wait_until(std::move(cond)));
  out.push_back(assign(std::move(target), sig(ctx.bus, "DATA")));
  out.push_back(sig_assign(ctx.bus, sigs.ack_field, lit(1)));
  out.push_back(wait_until(eq(sig(ctx.bus, sigs.strobe_field), lit(0))));
  out.push_back(sig_assign(ctx.bus, sigs.ack_field, lit(0)));
  return out;
}

Block phase_epilogue(const WireContext& ctx) {
  Block out;
  if (is_strobe_protocol(ctx.kind)) {
    const ProtocolSignals sigs = protocol_signals(ctx.kind);
    // Return the strobe to 0 and let it settle, so the next phase's first
    // word (parity 1) is always a fresh edge.
    out.push_back(sig_assign(ctx.bus, sigs.strobe_field, lit(0)));
    out.push_back(wait_for(ctx.hold_cycles()));
  }
  return out;
}

Block bus_turnaround(const WireContext& ctx) {
  Block out;
  if (is_strobe_protocol(ctx.kind)) {
    out.push_back(wait_for(2 * ctx.hold_cycles()));
  }
  return out;
}

Block response_epilogue(const WireContext& ctx) {
  Block out;
  if (is_strobe_protocol(ctx.kind)) {
    const ProtocolSignals sigs = protocol_signals(ctx.kind);
    out.push_back(wait_until(eq(sig(ctx.bus, sigs.strobe_field), lit(0))));
    // Two hold cycles: one for the server's trailing word hold, one for
    // its own phase epilogue -- after this the server is provably back at
    // its dispatcher, so the caller may start a new transaction.
    for (auto& stmt : bus_turnaround(ctx)) out.push_back(std::move(stmt));
  }
  return out;
}

ExprPtr dispatch_condition(const WireContext& ctx) {
  const ProtocolSignals sigs = protocol_signals(ctx.kind);
  // Word 1 of any request phase drives the strobe to 1 in every protocol
  // (first parity is 1 for strobe disciplines, START=1 for handshakes).
  return eq(sig(ctx.bus, sigs.strobe_field), lit(1));
}

}  // namespace ifsyn::protocol
