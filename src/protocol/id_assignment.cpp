#include "protocol/id_assignment.hpp"

#include "util/assert.hpp"

namespace ifsyn::protocol {

int id_bits_for(int channel_count) {
  IFSYN_ASSERT_MSG(channel_count >= 1, "bus without channels");
  return spec::bits_to_encode(channel_count);
}

Status assign_ids(spec::System& system, spec::BusGroup& bus) {
  if (bus.channel_names.empty()) {
    return invalid_argument("bus " + bus.name + " has no channels");
  }
  bus.id_bits = id_bits_for(static_cast<int>(bus.channel_names.size()));
  int next_id = 0;
  for (const std::string& name : bus.channel_names) {
    spec::Channel* ch = system.find_channel(name);
    if (!ch) return not_found("channel " + name + " of bus " + bus.name);
    ch->id = next_id++;
  }
  return Status::ok();
}

BitVector id_literal(const spec::Channel& channel,
                     const spec::BusGroup& bus) {
  IFSYN_ASSERT_MSG(channel.id >= 0,
                   "channel " << channel.name << " has no ID assigned");
  IFSYN_ASSERT_MSG(bus.id_bits > 0, "bus " << bus.name << " has no ID lines");
  return BitVector::from_uint(bus.id_bits,
                              static_cast<std::uint64_t>(channel.id));
}

spec::ExprPtr id_guard(const spec::Channel& channel,
                       const spec::BusGroup& bus) {
  if (bus.id_bits == 0) return nullptr;
  return spec::eq(spec::sig(bus.name, "ID"),
                  spec::bits(id_literal(channel, bus)));
}

}  // namespace ifsyn::protocol
