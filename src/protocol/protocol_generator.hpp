// ifsyn/protocol/protocol_generator.hpp
//
// Protocol generation, the paper's primary contribution (Sec. 4): given a
// bus group whose width has been chosen by bus generation, refine the
// specification so that every abstract channel is implemented by concrete
// signal traffic. The five steps:
//
//   1. Protocol selection  -- options.protocol (full/half handshake,
//                             fixed delay, hardwired ports)
//   2. ID assignment       -- protocol/id_assignment
//   3. Bus structure and send/receive procedure definition
//                          -- the bus record signal + procedure_synthesis
//   4. Variable-reference update
//                          -- protocol/reference_rewriter
//   5. Variable-process generation
//                          -- protocol/variable_process
//
// After generate_all succeeds the System is *refined*: it contains the
// bus signal(s), the Send/Receive/Serve procedures, rewritten accessor
// processes, and server processes -- and it simulates (sim::simulate),
// which is the property the paper claims for its output.
#pragma once

#include "obs/scoped_timer.hpp"
#include "protocol/protocol_library.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::protocol {

/// DATA width of a hardwired channel's dedicated port: writes move the
/// whole addr&data message in one word; reads use the same lines for the
/// address request and the data response, so the wider of the two.
int hardwired_width(const spec::Channel& channel);

struct ProtocolGenOptions {
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;
  /// Insert BusLock acquire/release around requester transactions so
  /// concurrent masters serialize (the paper's future-work arbitration).
  /// Without it, specs whose masters overlap in time will corrupt each
  /// other's handshakes -- exactly as they would in hardware.
  bool arbitrate = false;
  /// Optional metrics hooks: deterministic "protocol." work counters
  /// (messages sliced, transfer words generated, procedures, servers).
  obs::ObsContext obs;
};

class ProtocolGenerator {
 public:
  explicit ProtocolGenerator(ProtocolGenOptions options = {});

  /// Steps 1-4 for one bus group. Requires bus generation to have set the
  /// group's width (kFailedPrecondition otherwise).
  Status generate_bus(spec::System& system, const std::string& bus_name);

  /// Step 5 for every variable reached by any generated bus. Run once,
  /// after all generate_bus calls.
  Status generate_servers(spec::System& system);

  /// Steps 1-5 for every bus group in the system.
  Status generate_all(spec::System& system);

  /// The wire-level context (signal name, width, ID bits, protocol) a
  /// channel's traffic uses. For shared protocols this is the bus record;
  /// hardwired ports give every channel its own signal.
  static WireContext wire_context(const spec::BusGroup& bus,
                                  const spec::Channel& channel);

  /// Dedicated signal name for a hardwired channel.
  static std::string hardwired_signal_name(const spec::BusGroup& bus,
                                           const spec::Channel& channel);

 private:
  Status rewrite_accessors(spec::System& system, const spec::BusGroup& bus);

  ProtocolGenOptions options_;
};

}  // namespace ifsyn::protocol
