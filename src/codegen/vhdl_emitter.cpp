#include "codegen/vhdl_emitter.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ifsyn::codegen {

using namespace spec;

VhdlEmitter::VhdlEmitter(VhdlOptions options) : options_(std::move(options)) {}

std::string VhdlEmitter::pad(int indent) const {
  return std::string(static_cast<std::size_t>(indent) *
                         static_cast<std::size_t>(options_.indent_width),
                     ' ');
}

std::string VhdlEmitter::emit_type(const Type& type) const {
  std::ostringstream os;
  switch (type.kind()) {
    case Type::Kind::kBits:
      if (type.scalar_width() == 1) {
        os << "bit";
      } else {
        os << "bit_vector(" << type.scalar_width() - 1 << " downto 0)";
      }
      break;
    case Type::Kind::kInt:
      os << "integer";
      break;
    case Type::Kind::kArray:
      os << "array (0 to " << type.array_size() - 1 << ") of "
         << emit_type(type.element());
      break;
  }
  return os.str();
}

std::string VhdlEmitter::emit_expr(const Expr& expr) const {
  std::ostringstream os;
  if (const auto* e = expr.as<IntLit>()) {
    os << e->value;
  } else if (const auto* e = expr.as<BitsLit>()) {
    if (e->value.width() == 1) {
      os << "'" << e->value.to_binary_string() << "'";
    } else {
      os << '"' << e->value.to_binary_string() << '"';
    }
  } else if (const auto* e = expr.as<VarRef>()) {
    os << e->name;
  } else if (const auto* e = expr.as<ArrayRef>()) {
    os << e->name << "(" << emit_expr(*e->index) << ")";
  } else if (const auto* e = expr.as<SliceExpr>()) {
    os << emit_expr(*e->base) << "(" << emit_expr(*e->hi) << " downto "
       << emit_expr(*e->lo) << ")";
  } else if (const auto* e = expr.as<SignalRef>()) {
    os << e->signal;
    if (!e->field.empty()) os << "." << e->field;
  } else if (const auto* e = expr.as<UnaryExpr>()) {
    os << "(" << unary_op_name(e->op) << " " << emit_expr(*e->operand) << ")";
  } else if (const auto* e = expr.as<BinaryExpr>()) {
    // Comparisons against the 0/1 integer literals on 1-bit signals read
    // as VHDL '0'/'1' character literals.
    auto operand = [this, e](const Expr& side, const Expr& other) {
      const auto* il = side.as<IntLit>();
      const bool other_is_bit =
          other.as<SignalRef>() != nullptr &&
          (e->op == BinaryOp::kEq || e->op == BinaryOp::kNe);
      if (il && other_is_bit && (il->value == 0 || il->value == 1)) {
        return std::string(il->value ? "'1'" : "'0'");
      }
      return emit_expr(side);
    };
    os << "(" << operand(*e->lhs, *e->rhs) << " " << binary_op_name(e->op)
       << " " << operand(*e->rhs, *e->lhs) << ")";
  } else {
    IFSYN_ASSERT(false);
  }
  return os.str();
}

std::string VhdlEmitter::emit_stmt(const Stmt& stmt, int indent) const {
  std::ostringstream os;
  const std::string in = pad(indent);

  if (const auto* s = stmt.as<VarAssign>()) {
    os << in << s->target.to_string() << " := " << emit_expr(*s->value)
       << ";\n";
  } else if (const auto* s = stmt.as<SignalAssign>()) {
    os << in << s->signal;
    if (!s->field.empty()) os << "." << s->field;
    // Render 0/1 integer literals onto 1-bit fields as '0'/'1'.
    if (const auto* il = s->value->as<IntLit>();
        il && (il->value == 0 || il->value == 1)) {
      os << " <= '" << il->value << "';\n";
    } else {
      os << " <= " << emit_expr(*s->value) << ";\n";
    }
  } else if (const auto* s = stmt.as<WaitUntil>()) {
    os << in << "wait until " << emit_expr(*s->cond) << ";\n";
  } else if (const auto* s = stmt.as<WaitOn>()) {
    os << in << "wait on ";
    for (std::size_t i = 0; i < s->sensitivity.size(); ++i) {
      if (i) os << ", ";
      os << s->sensitivity[i].signal;
      if (!s->sensitivity[i].field.empty())
        os << "." << s->sensitivity[i].field;
    }
    os << ";\n";
  } else if (const auto* s = stmt.as<WaitFor>()) {
    os << in << "wait for " << emit_expr(*s->cycles) << " * "
       << options_.clock_constant << ";\n";
  } else if (const auto* s = stmt.as<IfStmt>()) {
    os << in << "if " << emit_expr(*s->cond) << " then\n"
       << emit_block(s->then_body, indent + 1);
    // elsif chains are nested single-if else bodies; flatten for
    // readability (matches Fig. 5's if/elsif dispatch).
    const Block* else_body = &s->else_body;
    while (else_body->size() == 1) {
      const auto* nested = (*else_body)[0]->as<IfStmt>();
      if (!nested) break;
      os << in << "elsif " << emit_expr(*nested->cond) << " then\n"
         << emit_block(nested->then_body, indent + 1);
      else_body = &nested->else_body;
    }
    if (!else_body->empty()) {
      os << in << "else\n" << emit_block(*else_body, indent + 1);
    }
    os << in << "end if;\n";
  } else if (const auto* s = stmt.as<ForStmt>()) {
    os << in << "for " << s->var << " in " << emit_expr(*s->from) << " to "
       << emit_expr(*s->to) << " loop\n"
       << emit_block(s->body, indent + 1) << in << "end loop;\n";
  } else if (const auto* s = stmt.as<WhileStmt>()) {
    os << in << "while " << emit_expr(*s->cond) << " loop\n"
       << emit_block(s->body, indent + 1) << in << "end loop;\n";
  } else if (const auto* s = stmt.as<ForeverStmt>()) {
    os << in << "loop\n"
       << emit_block(s->body, indent + 1) << in << "end loop;\n";
  } else if (const auto* s = stmt.as<ProcCall>()) {
    os << in << s->proc << "(";
    for (std::size_t i = 0; i < s->args.size(); ++i) {
      if (i) os << ", ";
      if (const auto* e = std::get_if<ExprPtr>(&s->args[i])) {
        os << emit_expr(**e);
      } else {
        os << std::get<LValue>(s->args[i]).to_string();
      }
    }
    os << ");\n";
  } else if (const auto* s = stmt.as<BusLock>()) {
    os << in << "-- " << (s->acquire ? "acquire" : "release") << " bus "
       << s->bus << " (arbitration extension; no VHDL'87 primitive)\n";
  } else {
    IFSYN_ASSERT(false);
  }
  return os.str();
}

std::string VhdlEmitter::emit_block(const Block& block, int indent) const {
  std::string out;
  for (const auto& stmt : block) out += emit_stmt(*stmt, indent);
  return out;
}

std::string VhdlEmitter::emit_bus_declarations(const System& system) const {
  std::ostringstream os;
  for (const auto& sig : system.signals()) {
    if (sig->fields.size() == 1 && sig->fields[0].name.empty()) {
      os << "signal " << sig->name << " : "
         << emit_type(Type::bits(sig->fields[0].width)) << ";\n";
      continue;
    }
    // Fig. 4: type HandShakeBus is record ... end record;
    const std::string type_name =
        system.signals().size() == 1 ? options_.bus_type_name
                                     : sig->name + "_t";
    os << "type " << type_name << " is record\n";
    for (const auto& f : sig->fields) {
      os << pad(1) << f.name << " : " << emit_type(Type::bits(f.width))
         << ";\n";
    }
    os << "end record;\n";
    os << "signal " << sig->name << " : " << type_name << ";\n\n";
  }
  return os.str();
}

std::string VhdlEmitter::emit_procedure(const Procedure& proc) const {
  std::ostringstream os;
  os << "procedure " << proc.name << "(";
  for (std::size_t i = 0; i < proc.params.size(); ++i) {
    if (i) os << "; ";
    const Param& p = proc.params[i];
    os << p.name << " : " << (p.dir == ParamDir::kIn ? "in " : "out ")
       << emit_type(p.type);
  }
  os << ") is\n";
  for (const auto& local : proc.locals) {
    os << pad(1) << "variable " << local.name << " : "
       << emit_type(local.type) << ";\n";
  }
  os << "begin\n" << emit_block(proc.body, 1) << "end " << proc.name << ";\n";
  return os.str();
}

std::string VhdlEmitter::emit_process(const Process& process) const {
  std::ostringstream os;
  os << process.name << " : process\n";
  for (const auto& local : process.locals) {
    os << pad(1) << "variable " << local.name << " : "
       << emit_type(local.type) << ";\n";
  }
  os << "begin\n" << emit_block(process.body, 1);
  // A VHDL process restarts after its last statement; one-shot behaviors
  // need a final wait. Processes ending in an infinite loop (the
  // generated servers) never reach the end, so the wait would be dead.
  const bool ends_in_forever =
      !process.body.empty() &&
      process.body.back()->as<ForeverStmt>() != nullptr;
  if (!process.restarts && !ends_in_forever) {
    os << pad(1) << "wait;  -- one-shot behavior\n";
  }
  os << "end process " << process.name << ";\n";
  return os.str();
}

std::string VhdlEmitter::emit_system(const System& system) const {
  std::ostringstream os;
  os << "-- Refined specification generated by ifsyn protocol generation\n";
  os << "-- (Narayan & Gajski, \"Protocol Generation for Communication "
        "Channels\", DAC 1994)\n\n";
  os << "entity " << system.name() << "_sys is\nend " << system.name()
     << "_sys;\n\n";
  os << "architecture refined of " << system.name() << "_sys is\n\n";
  os << "constant " << options_.clock_constant << " : time := 10 ns;\n\n";
  os << emit_bus_declarations(system);

  for (const auto& v : system.variables()) {
    // System-level variables become shared signals of the architecture in
    // VHDL; their access serialization is what the generated server
    // processes provide.
    if (v->type.is_array()) {
      os << "type " << v->name << "_t is " << emit_type(v->type) << ";\n"
         << "shared variable " << v->name << " : " << v->name << "_t;\n";
    } else {
      os << "shared variable " << v->name << " : " << emit_type(v->type)
         << ";\n";
    }
  }
  os << "\n";

  for (const auto& p : system.procedures()) {
    os << emit_procedure(*p) << "\n";
  }
  os << "begin\n\n";
  for (const auto& p : system.processes()) {
    os << emit_process(*p) << "\n";
  }
  os << "end refined;\n";
  return os.str();
}

}  // namespace ifsyn::codegen
