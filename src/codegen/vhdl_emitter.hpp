// ifsyn/codegen/vhdl_emitter.hpp
//
// Emits the refined specification as VHDL'87-style source, matching the
// shape of the paper's Figs. 4-5: the bus record type and signal
// declaration, the generated send/receive procedures, the rewritten
// behaviors, and the variable server processes.
//
// The output targets readability and structural fidelity to the paper's
// listings (record fields START/DONE/ID/DATA, `wait until (B.START = '1')
// and (B.ID = "00")`, `txdata(8*J-1 downto 8*(J-1))`), not compilation by
// a specific VHDL tool: clocked timing is expressed as
// `wait for N * CLOCK_PERIOD`, and the BusLock arbitration extension --
// which plain VHDL'87 has no primitive for -- is emitted as a commented
// protected region.
#pragma once

#include <string>

#include "spec/system.hpp"

namespace ifsyn::codegen {

struct VhdlOptions {
  /// Record type name for shared buses (Fig. 4's "HandShakeBus").
  std::string bus_type_name = "HandShakeBus";
  std::string clock_constant = "CLOCK_PERIOD";
  int indent_width = 2;
};

class VhdlEmitter {
 public:
  explicit VhdlEmitter(VhdlOptions options = {});

  /// The record type + signal declarations for every signal in the
  /// system (top of Fig. 4).
  std::string emit_bus_declarations(const spec::System& system) const;

  /// One procedure (Fig. 4's SendCH0 / ReceiveCH0).
  std::string emit_procedure(const spec::Procedure& proc) const;

  /// One process (Fig. 5's process P / Xproc).
  std::string emit_process(const spec::Process& process) const;

  /// Whole refined system: entity/architecture wrapper, type and signal
  /// declarations, procedures, processes.
  std::string emit_system(const spec::System& system) const;

  // -- building blocks, exposed for golden tests --
  std::string emit_type(const spec::Type& type) const;
  std::string emit_expr(const spec::Expr& expr) const;
  std::string emit_stmt(const spec::Stmt& stmt, int indent) const;
  std::string emit_block(const spec::Block& block, int indent) const;

 private:
  std::string pad(int indent) const;

  VhdlOptions options_;
};

}  // namespace ifsyn::codegen
