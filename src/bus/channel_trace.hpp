// ifsyn/bus/channel_trace.hpp
//
// Transfer-trace merging, the semantics behind the paper's Fig. 2:
// channels A and B each carry timed transfers; merged onto one bus, an
// individual transfer may be delayed by bus-access conflicts, but as long
// as the bus rate is at least the sum of the channel average rates
// (Eq. 1), the same bits still move "in the same amount of time".
//
// The scheduler is FIFO by arrival time (ties broken by trace order) and
// also reports per-transfer delay and bus utilization, giving the
// arbitration-delay observability the paper's Sec. 6 asks for.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace ifsyn::bus {

/// One data item on an abstract channel ("A1", "B2", ... in Fig. 2).
struct Transfer {
  double time = 0;  ///< instant the producer makes the item available
  int bits = 0;
  std::string label;
};

/// A channel's transfer history over a representative period.
struct ChannelTrace {
  std::string name;
  double period = 0;  ///< representative interval length (4 s in Fig. 2)
  std::vector<Transfer> transfers;

  /// AveRate(C): bits sent over the period (Sec. 2).
  double average_rate() const;
  long long total_bits() const;
};

/// One transfer as actually placed on the shared bus.
struct ScheduledTransfer {
  std::string channel;
  std::string label;
  int bits = 0;
  double ready = 0;  ///< original availability
  double start = 0;  ///< when the bus begins moving it
  double end = 0;    ///< start + bits / bus_rate
  double delay() const { return start - ready; }
};

struct MergedSchedule {
  double bus_rate = 0;
  std::vector<ScheduledTransfer> transfers;  ///< in bus order
  double makespan = 0;      ///< end of the last transfer
  double busy_time = 0;     ///< total time the bus was moving bits
  double utilization = 0;   ///< busy_time / makespan
  double max_delay = 0;     ///< worst per-transfer delay
  double total_delay = 0;   ///< summed delays (arbitration cost)
};

/// Merge channel traces onto a bus transferring at `bus_rate` bits per
/// time unit. kInvalidArgument for non-positive rate or malformed traces.
Result<MergedSchedule> merge_traces(const std::vector<ChannelTrace>& traces,
                                    double bus_rate);

/// Smallest bus rate satisfying Eq. 1 for the traces: sum of the channel
/// average rates ("(4 + 12) = 16 bits/second" in Fig. 2).
double required_bus_rate(const std::vector<ChannelTrace>& traces);

}  // namespace ifsyn::bus
