#include "bus/channel_trace.hpp"

#include <algorithm>
#include <numeric>

namespace ifsyn::bus {

long long ChannelTrace::total_bits() const {
  return std::accumulate(transfers.begin(), transfers.end(), 0LL,
                         [](long long acc, const Transfer& t) {
                           return acc + t.bits;
                         });
}

double ChannelTrace::average_rate() const {
  if (period <= 0) return 0;
  return static_cast<double>(total_bits()) / period;
}

double required_bus_rate(const std::vector<ChannelTrace>& traces) {
  return std::accumulate(traces.begin(), traces.end(), 0.0,
                         [](double acc, const ChannelTrace& t) {
                           return acc + t.average_rate();
                         });
}

Result<MergedSchedule> merge_traces(const std::vector<ChannelTrace>& traces,
                                    double bus_rate) {
  if (bus_rate <= 0) {
    return invalid_argument("bus rate must be positive");
  }
  for (const ChannelTrace& trace : traces) {
    if (trace.period <= 0) {
      return invalid_argument("trace " + trace.name +
                              " has non-positive period");
    }
    for (const Transfer& t : trace.transfers) {
      if (t.bits <= 0)
        return invalid_argument("transfer " + t.label + " on " + trace.name +
                                " has non-positive size");
      if (t.time < 0)
        return invalid_argument("transfer " + t.label + " on " + trace.name +
                                " has negative time");
    }
  }

  // Gather all transfers and sort by availability; stable so that ties
  // keep the caller's channel order (channel A before B in Fig. 2).
  MergedSchedule schedule;
  schedule.bus_rate = bus_rate;
  for (const ChannelTrace& trace : traces) {
    for (const Transfer& t : trace.transfers) {
      schedule.transfers.push_back(
          ScheduledTransfer{trace.name, t.label, t.bits, t.time, 0, 0});
    }
  }
  std::stable_sort(schedule.transfers.begin(), schedule.transfers.end(),
                   [](const ScheduledTransfer& a, const ScheduledTransfer& b) {
                     return a.ready < b.ready;
                   });

  double bus_free = 0;
  for (ScheduledTransfer& t : schedule.transfers) {
    t.start = std::max(t.ready, bus_free);
    t.end = t.start + static_cast<double>(t.bits) / bus_rate;
    bus_free = t.end;
    schedule.busy_time += t.end - t.start;
    schedule.max_delay = std::max(schedule.max_delay, t.delay());
    schedule.total_delay += t.delay();
    schedule.makespan = std::max(schedule.makespan, t.end);
  }
  schedule.utilization =
      schedule.makespan > 0 ? schedule.busy_time / schedule.makespan : 0;
  return schedule;
}

}  // namespace ifsyn::bus
