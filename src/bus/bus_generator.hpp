// ifsyn/bus/bus_generator.hpp
//
// The bus generation algorithm of Sec. 3 (originally the authors'
// EDAC'92 paper [8]): pick the cheapest buswidth that satisfies the
// data-transfer needs of a group of channels.
//
// Five steps, implemented verbatim:
//   1. Determine the buswidth range: [1, largest message any channel
//      sends].
//   2. For each width, compute the bus rate (Eq. 2).
//   3. Compute every channel's average rate at that width; the width is
//      feasible iff BusRate >= sum of average rates (Eq. 1).
//   4. Compute the cost of the candidate: weighted sum of squared
//      constraint violations.
//   5. Among feasible candidates, select the least-cost width (tie:
//      narrowest bus, minimizing interconnect). If no width is feasible,
//      report kInfeasible -- the group must be split across buses, which
//      split_group() implements (the "one solution to this problem" the
//      paper sketches at the end of Sec. 3).
#pragma once

#include <vector>

#include "bus/constraints.hpp"
#include "estimate/performance_estimator.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::bus {

struct BusGenOptions {
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  /// Cycles per word under kFixedDelay; ignored by the other protocols.
  /// Must match what protocol generation will later put on the bus, or
  /// Eq. 1/Eq. 2 are evaluated against the wrong timing.
  int fixed_delay_cycles = 2;
  std::vector<BusConstraint> constraints;
  /// Width search range override; 0 = the paper's defaults (step 1).
  int min_width = 0;
  int max_width = 0;
};

/// Everything computed for one candidate width (steps 2-4); kept so
/// benches and tests can print the whole exploration, not just the winner.
struct WidthEvaluation {
  int width = 0;
  double bus_rate = 0;          ///< Eq. 2
  double sum_average_rates = 0; ///< right side of Eq. 1
  bool feasible = false;
  double cost = 0;
  std::vector<estimate::ChannelRates> channel_rates;
};

struct BusGenResult {
  int selected_width = 0;
  double selected_bus_rate = 0;
  double selected_cost = 0;
  /// Sum of message bits of all channels: the pins needed if each channel
  /// kept dedicated wires. Fig. 8's "Total Bitwidth of the channels".
  int total_channel_bits = 0;
  /// 1 - selected_width / total_channel_bits (data lines only, as in the
  /// paper's "reduction in the number of data lines" of Sec. 5).
  double interconnect_reduction = 0;
  std::vector<WidthEvaluation> evaluations;

  const WidthEvaluation* evaluation_for(int width) const;
};

class BusGenerator {
 public:
  /// `system` and `estimator` must outlive the generator.
  BusGenerator(const spec::System& system,
               const estimate::PerformanceEstimator& estimator);

  /// Run steps 1-5 for one channel group. kInfeasible when no width in
  /// range satisfies Eq. 1; kInvalidArgument for empty groups.
  Result<BusGenResult> generate(const spec::BusGroup& bus,
                                const BusGenOptions& options) const;

  /// Evaluate one specific width (steps 2-4 only). Exposed for tests,
  /// Fig. 7-style sweeps, and what-if exploration.
  WidthEvaluation evaluate_width(const spec::BusGroup& bus, int width,
                                 const BusGenOptions& options) const;

  /// Greedy fallback for infeasible groups: partition the channels into
  /// the minimum number of subgroups (by descending average-rate demand,
  /// first-fit) such that each subgroup is feasible at its own best
  /// width. Returns the subgroups as lists of channel names.
  Result<std::vector<std::vector<std::string>>> split_group(
      const spec::BusGroup& bus, const BusGenOptions& options) const;

  /// Step 1: the width search range for a group.
  std::pair<int, int> width_range(const spec::BusGroup& bus,
                                  const BusGenOptions& options) const;

 private:
  const spec::System& system_;
  const estimate::PerformanceEstimator& estimator_;
};

}  // namespace ifsyn::bus
