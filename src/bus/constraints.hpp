// ifsyn/bus/constraints.hpp
//
// Designer constraints for bus generation and the paper's cost function
// (Sec. 3 step 4): "The cost of a bus implementation is calculated as the
// sum of the squares of violations of each of the constraints, weighted
// by the relative weights specified for them."
//
// The constraint vocabulary is the one the paper enumerates: min/max bus
// width, min/max channel average rate, min/max channel peak rate -- each
// with a relative weight (Fig. 8's "(10)", "(2)", ... annotations).
#pragma once

#include <string>
#include <vector>

#include "estimate/performance_estimator.hpp"

namespace ifsyn::bus {

enum class ConstraintKind {
  kMinBusWidth,  ///< bound in pins, applies to the bus
  kMaxBusWidth,
  kMinAveRate,   ///< bound in bits/clock, applies to a named channel
  kMaxAveRate,
  kMinPeakRate,
  kMaxPeakRate,
};

const char* constraint_kind_name(ConstraintKind kind);

struct BusConstraint {
  ConstraintKind kind;
  /// Channel the rate constraint applies to; empty for width constraints.
  std::string channel;
  /// Pins for width constraints; bits/clock for rate constraints.
  double bound = 0;
  /// Relative weight in the cost function.
  double weight = 1;
};

/// Convenience factories mirroring Fig. 8's table rows.
BusConstraint min_bus_width(double pins, double weight);
BusConstraint max_bus_width(double pins, double weight);
BusConstraint min_ave_rate(std::string channel, double rate, double weight);
BusConstraint max_ave_rate(std::string channel, double rate, double weight);
BusConstraint min_peak_rate(std::string channel, double rate, double weight);
BusConstraint max_peak_rate(std::string channel, double rate, double weight);

/// Amount by which one candidate implementation violates one constraint
/// (0 when satisfied). `rates` must contain an entry for any channel a
/// rate constraint names.
double violation(const BusConstraint& constraint, int width,
                 const std::vector<estimate::ChannelRates>& rates);

/// Weighted sum of squared violations (the paper's cost function).
double implementation_cost(const std::vector<BusConstraint>& constraints,
                           int width,
                           const std::vector<estimate::ChannelRates>& rates);

}  // namespace ifsyn::bus
