// ifsyn/bus/lane_allocator.hpp
//
// The paper's second future-work item (Sec. 6): "ways in which two or
// more channels may transfer data simultaneously over the same bus by
// utilizing different sets of data and control lines. This would be
// useful in cases when no feasible solution can be found in the range of
// buswidths examined."
//
// A *lane plan* partitions a channel group into k disjoint lanes. Each
// lane gets its own data lines, control lines and ID lines (it is a
// complete little bus), so transfers on different lanes proceed
// concurrently; channels within a lane still serialize. The allocator
// searches lane counts 1..max_lanes under a total data-line budget,
// placing channels by longest-processing-time-first onto the least-loaded
// lane and splitting the budget across lanes in proportion to their
// demand, then picks the plan with the smallest estimated completion time
// (ties: fewer lanes, which saves control/ID wires).
#pragma once

#include <string>
#include <vector>

#include "estimate/performance_estimator.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::bus {

struct Lane {
  std::vector<std::string> channels;
  int width = 0;
  /// Serialized transfer demand of the lane's channels at this width:
  /// sum of accesses * ceil(message/width) * cycles_per_word.
  long long busy_cycles = 0;
  /// Eq. 1 at the lane level.
  bool feasible = false;
};

struct LanePlan {
  std::vector<Lane> lanes;
  int total_data_lines = 0;
  /// Data + per-lane control and ID lines.
  int total_wires = 0;
  /// max over lanes of busy_cycles: the communication-bound completion
  /// estimate when all channels are active concurrently.
  long long completion_cycles = 0;
  bool feasible = false;

  int lane_count() const { return static_cast<int>(lanes.size()); }
};

class LaneAllocator {
 public:
  LaneAllocator(const spec::System& system,
                const estimate::PerformanceEstimator& estimator);

  /// Plan one lane count exactly. kInvalidArgument when the budget cannot
  /// give every lane at least one data line.
  Result<LanePlan> plan(const spec::BusGroup& group, int width_budget,
                        int lane_count, spec::ProtocolKind kind,
                        int fixed_delay_cycles) const;

  /// Search lane counts 1..max_lanes and return the best feasible plan by
  /// completion estimate; if no count is Eq. 1-feasible, the plan with
  /// the smallest completion estimate is returned with feasible=false.
  Result<LanePlan> allocate(const spec::BusGroup& group, int width_budget,
                            int max_lanes, spec::ProtocolKind kind,
                            int fixed_delay_cycles) const;

  /// Rewrite the system so the plan is real: the original group keeps
  /// lane 0 (renamed widths/channels), and one new group per further lane
  /// is added, named <group>_lane<k>. Protocol generation then gives each
  /// lane its own signal/procedures. Returns the created group names
  /// (lane 0 first, i.e. the original name).
  Result<std::vector<std::string>> apply(spec::System& system,
                                         const std::string& group_name,
                                         const LanePlan& plan) const;

 private:
  const spec::System& system_;
  const estimate::PerformanceEstimator& estimator_;
};

}  // namespace ifsyn::bus
