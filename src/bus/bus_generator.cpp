#include "bus/bus_generator.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace ifsyn::bus {

const WidthEvaluation* BusGenResult::evaluation_for(int width) const {
  for (const auto& e : evaluations) {
    if (e.width == width) return &e;
  }
  return nullptr;
}

BusGenerator::BusGenerator(const spec::System& system,
                           const estimate::PerformanceEstimator& estimator)
    : system_(system), estimator_(estimator) {}

std::pair<int, int> BusGenerator::width_range(
    const spec::BusGroup& bus, const BusGenOptions& options) const {
  int largest_message = 1;
  for (const spec::Channel* ch : system_.channels_of_bus(bus)) {
    largest_message = std::max(largest_message, ch->message_bits());
  }
  const int lo = options.min_width > 0 ? options.min_width : 1;
  const int hi = options.max_width > 0 ? options.max_width : largest_message;
  return {lo, hi};
}

WidthEvaluation BusGenerator::evaluate_width(
    const spec::BusGroup& bus, int width, const BusGenOptions& options) const {
  WidthEvaluation eval;
  eval.width = width;
  eval.bus_rate = estimate::bus_rate(width, options.protocol,
                                     options.fixed_delay_cycles);    // step 2
  eval.channel_rates = estimator_.channel_rates(
      bus, width, options.protocol, options.fixed_delay_cycles);     // step 3
  eval.sum_average_rates = std::accumulate(
      eval.channel_rates.begin(), eval.channel_rates.end(), 0.0,
      [](double acc, const estimate::ChannelRates& r) {
        return acc + r.average;
      });
  eval.feasible = eval.bus_rate >= eval.sum_average_rates;           // Eq. 1
  eval.cost =
      implementation_cost(options.constraints, width, eval.channel_rates);
  return eval;
}

Result<BusGenResult> BusGenerator::generate(const spec::BusGroup& bus,
                                            const BusGenOptions& options) const {
  if (bus.channel_names.empty()) {
    return invalid_argument("bus group " + bus.name + " has no channels");
  }

  BusGenResult result;
  for (const spec::Channel* ch : system_.channels_of_bus(bus)) {
    if (ch->accesses <= 0) {
      return failed_precondition(
          "channel " + ch->name +
          " has no access count; run spec::annotate_channel_accesses first");
    }
    result.total_channel_bits += ch->message_bits();
  }

  const auto [lo, hi] = width_range(bus, options);
  if (lo > hi) {
    return invalid_argument("empty width range for bus " + bus.name);
  }

  // Track the winner by index: the evaluations vector reallocates as it
  // grows, so a pointer/reference into it would dangle.
  std::ptrdiff_t best = -1;
  for (int width = lo; width <= hi; ++width) {
    result.evaluations.push_back(evaluate_width(bus, width, options));
    const WidthEvaluation& eval = result.evaluations.back();
    if (!eval.feasible) continue;
    // Step 5: least cost wins; ties go to the narrower bus, which is the
    // earlier candidate, so strict less-than implements the tiebreak.
    if (best < 0 ||
        eval.cost < result.evaluations[static_cast<std::size_t>(best)].cost) {
      best = static_cast<std::ptrdiff_t>(result.evaluations.size()) - 1;
    }
  }

  if (best < 0) {
    return infeasible("no feasible buswidth in [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "] for bus " + bus.name +
                      "; split the channel group (see split_group)");
  }

  const WidthEvaluation& winner =
      result.evaluations[static_cast<std::size_t>(best)];
  result.selected_width = winner.width;
  result.selected_bus_rate = winner.bus_rate;
  result.selected_cost = winner.cost;
  // total_channel_bits is positive whenever the group has channels, but a
  // zero-width message would make the ratio NaN; report 0 instead.
  result.interconnect_reduction =
      result.total_channel_bits > 0
          ? 1.0 - static_cast<double>(winner.width) / result.total_channel_bits
          : 0.0;
  return result;
}

Result<std::vector<std::vector<std::string>>> BusGenerator::split_group(
    const spec::BusGroup& bus, const BusGenOptions& options) const {
  // Order channels by descending bandwidth demand at their own best case
  // (widest useful word: the message size), then first-fit each into the
  // first subgroup that stays feasible.
  std::vector<const spec::Channel*> channels = system_.channels_of_bus(bus);
  std::vector<double> demand(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    demand[i] = estimator_.average_rate(*channels[i],
                                        channels[i]->message_bits(),
                                        options.protocol,
                                        options.fixed_delay_cycles);
  }
  std::vector<std::size_t> order(channels.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&demand](std::size_t a, std::size_t b) {
    return demand[a] > demand[b];
  });

  // Trial subgroups are plain BusGroup values; channel resolution is by
  // name, so they never have to be registered with the system.
  auto feasible_group = [this,
                         &options](const std::vector<std::string>& names) {
    spec::BusGroup trial;
    trial.name = "__trial";
    trial.channel_names = names;
    BusGenOptions no_constraints = options;
    no_constraints.constraints.clear();
    const auto [lo, hi] = width_range(trial, no_constraints);
    for (int width = lo; width <= hi; ++width) {
      if (evaluate_width(trial, width, no_constraints).feasible) return true;
    }
    return false;
  };

  std::vector<std::vector<std::string>> groups;
  for (std::size_t idx : order) {
    const std::string& name = channels[idx]->name;
    bool placed = false;
    for (auto& group : groups) {
      group.push_back(name);
      if (feasible_group(group)) {
        placed = true;
        break;
      }
      group.pop_back();
    }
    if (!placed) {
      std::vector<std::string> solo{name};
      if (!feasible_group(solo)) {
        return infeasible("channel " + name +
                          " is infeasible even on a dedicated bus");
      }
      groups.push_back(std::move(solo));
    }
  }
  return groups;
}

}  // namespace ifsyn::bus
