#include "bus/lane_allocator.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace ifsyn::bus {

using spec::Channel;

LaneAllocator::LaneAllocator(const spec::System& system,
                             const estimate::PerformanceEstimator& estimator)
    : system_(system), estimator_(estimator) {}

namespace {

/// A channel's raw demand in bit-cycles, width-independent: total bits it
/// must move per activation. Used for load balancing before widths exist.
long long demand_bits(const Channel& ch) {
  return estimate::PerformanceEstimator::bits_per_activation(ch);
}

long long lane_busy_cycles(const std::vector<const Channel*>& channels,
                           int width, spec::ProtocolKind kind,
                           int fixed_delay_cycles) {
  long long busy = 0;
  for (const Channel* ch : channels) {
    busy += ch->accesses * estimate::message_transfer_cycles(
                               *ch, width, kind, fixed_delay_cycles);
  }
  return busy;
}

}  // namespace

Result<LanePlan> LaneAllocator::plan(const spec::BusGroup& group,
                                     int width_budget, int lane_count,
                                     spec::ProtocolKind kind,
                                     int fixed_delay_cycles) const {
  std::vector<const Channel*> channels = system_.channels_of_bus(group);
  if (channels.empty()) {
    return invalid_argument("group " + group.name + " has no channels");
  }
  if (lane_count < 1 ||
      lane_count > static_cast<int>(channels.size())) {
    return invalid_argument("lane count must be in [1, #channels]");
  }
  if (width_budget < lane_count) {
    return invalid_argument("width budget " + std::to_string(width_budget) +
                            " cannot give " + std::to_string(lane_count) +
                            " lanes a data line each");
  }
  for (const Channel* ch : channels) {
    if (ch->accesses <= 0) {
      return failed_precondition("channel " + ch->name +
                                 " has no access count");
    }
  }

  // ---- LPT placement by raw demand -------------------------------------
  std::vector<std::size_t> order(channels.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&channels](std::size_t a, std::size_t b) {
                     return demand_bits(*channels[a]) >
                            demand_bits(*channels[b]);
                   });

  LanePlan plan;
  plan.lanes.resize(static_cast<std::size_t>(lane_count));
  std::vector<long long> load(static_cast<std::size_t>(lane_count), 0);
  std::vector<std::vector<const Channel*>> members(
      static_cast<std::size_t>(lane_count));
  for (std::size_t idx : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[target] += demand_bits(*channels[idx]);
    members[target].push_back(channels[idx]);
  }
  // Drop empty lanes (more lanes than useful partitions).
  for (std::size_t k = 0; k < members.size();) {
    if (members[k].empty()) {
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(k));
      load.erase(load.begin() + static_cast<std::ptrdiff_t>(k));
      plan.lanes.pop_back();
    } else {
      ++k;
    }
  }

  // ---- width split proportional to load, >= 1 each ----------------------
  const long long total_load =
      std::accumulate(load.begin(), load.end(), 0LL);
  for (std::size_t k = 0; k < plan.lanes.size(); ++k) {
    const int fair = total_load > 0
                         ? static_cast<int>(width_budget * load[k] /
                                            total_load)
                         : width_budget / static_cast<int>(plan.lanes.size());
    plan.lanes[k].width = std::max(1, fair);
  }
  // Normalize to the budget (clamping above may over/under-shoot).
  int used = 0;
  for (const Lane& lane : plan.lanes) used += lane.width;
  // Give/take one line at a time where it changes busy time the most/least.
  while (used > width_budget) {
    auto widest = std::max_element(
        plan.lanes.begin(), plan.lanes.end(),
        [](const Lane& a, const Lane& b) { return a.width < b.width; });
    IFSYN_ASSERT(widest->width > 1);
    --widest->width;
    --used;
  }
  while (used < width_budget) {
    // Most loaded lane per data line profits most from one more.
    std::size_t best = 0;
    double best_ratio = -1;
    for (std::size_t k = 0; k < plan.lanes.size(); ++k) {
      const double ratio =
          static_cast<double>(load[k]) / (plan.lanes[k].width + 1);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = k;
      }
    }
    ++plan.lanes[best].width;
    ++used;
  }

  // Cap each lane at its largest message (extra lines buy nothing) and
  // return freed lines to the most loaded uncapped lane.
  for (std::size_t k = 0; k < plan.lanes.size(); ++k) {
    int largest = 1;
    for (const Channel* ch : members[k]) {
      largest = std::max(largest, ch->message_bits());
    }
    plan.lanes[k].width = std::min(plan.lanes[k].width, largest);
  }

  // ---- evaluate ----------------------------------------------------------
  plan.feasible = true;
  for (std::size_t k = 0; k < plan.lanes.size(); ++k) {
    Lane& lane = plan.lanes[k];
    for (const Channel* ch : members[k]) lane.channels.push_back(ch->name);
    lane.busy_cycles =
        lane_busy_cycles(members[k], lane.width, kind, fixed_delay_cycles);

    // Eq. 1 per lane: lane rate vs summed channel average rates.
    double demand_rate = 0;
    for (const Channel* ch : members[k]) {
      demand_rate += estimator_.average_rate(*ch, lane.width, kind,
                                             fixed_delay_cycles);
    }
    lane.feasible = estimate::bus_rate(lane.width, kind, fixed_delay_cycles) >=
                    demand_rate;
    plan.feasible = plan.feasible && lane.feasible;

    plan.total_data_lines += lane.width;
    const estimate::ProtocolTiming timing =
        estimate::protocol_timing(kind, fixed_delay_cycles);
    plan.total_wires +=
        lane.width + timing.control_lines +
        (members[k].size() > 1
             ? spec::bits_to_encode(static_cast<int>(members[k].size()))
             : 0);
    plan.completion_cycles =
        std::max(plan.completion_cycles, lane.busy_cycles);
  }
  return plan;
}

Result<LanePlan> LaneAllocator::allocate(const spec::BusGroup& group,
                                         int width_budget, int max_lanes,
                                         spec::ProtocolKind kind,
                                         int fixed_delay_cycles) const {
  const int channel_count =
      static_cast<int>(system_.channels_of_bus(group).size());
  max_lanes = std::min(max_lanes, channel_count);
  if (max_lanes < 1) {
    return invalid_argument("group " + group.name + " has no channels");
  }

  std::optional<LanePlan> best;
  auto better = [](const LanePlan& a, const LanePlan& b) {
    if (a.feasible != b.feasible) return a.feasible;
    if (a.completion_cycles != b.completion_cycles) {
      return a.completion_cycles < b.completion_cycles;
    }
    return a.lane_count() < b.lane_count();  // fewer control/ID wires
  };
  for (int k = 1; k <= max_lanes && k <= width_budget; ++k) {
    Result<LanePlan> candidate =
        plan(group, width_budget, k, kind, fixed_delay_cycles);
    if (!candidate.is_ok()) return candidate;
    if (!best || better(*candidate, *best)) best = std::move(candidate).value();
  }
  IFSYN_ASSERT(best);
  return *best;
}

Result<std::vector<std::string>> LaneAllocator::apply(
    spec::System& system, const std::string& group_name,
    const LanePlan& plan) const {
  spec::BusGroup* group = system.find_bus(group_name);
  if (!group) return not_found("bus group " + group_name);
  if (plan.lanes.empty()) return invalid_argument("empty lane plan");

  // Sanity: the plan must cover exactly the group's channels.
  std::size_t covered = 0;
  for (const Lane& lane : plan.lanes) covered += lane.channels.size();
  if (covered != group->channel_names.size()) {
    return invalid_argument("lane plan covers " + std::to_string(covered) +
                            " channels but group has " +
                            std::to_string(group->channel_names.size()));
  }

  std::vector<std::string> names;
  group->channel_names = plan.lanes[0].channels;
  group->width = plan.lanes[0].width;
  for (const std::string& ch : group->channel_names) {
    system.find_channel(ch)->bus = group->name;
  }
  names.push_back(group->name);

  for (std::size_t k = 1; k < plan.lanes.size(); ++k) {
    spec::BusGroup lane_group;
    lane_group.name = group_name + "_lane" + std::to_string(k);
    if (system.find_bus(lane_group.name)) {
      return invalid_argument("bus " + lane_group.name + " already exists");
    }
    lane_group.channel_names = plan.lanes[k].channels;
    lane_group.width = plan.lanes[k].width;
    names.push_back(lane_group.name);
    system.add_bus(std::move(lane_group));
  }
  return names;
}

}  // namespace ifsyn::bus
