#include "bus/constraints.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ifsyn::bus {

const char* constraint_kind_name(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kMinBusWidth: return "MinBusWidth";
    case ConstraintKind::kMaxBusWidth: return "MaxBusWidth";
    case ConstraintKind::kMinAveRate: return "MinAveRate";
    case ConstraintKind::kMaxAveRate: return "MaxAveRate";
    case ConstraintKind::kMinPeakRate: return "MinPeakRate";
    case ConstraintKind::kMaxPeakRate: return "MaxPeakRate";
  }
  return "?";
}

BusConstraint min_bus_width(double pins, double weight) {
  return BusConstraint{ConstraintKind::kMinBusWidth, {}, pins, weight};
}
BusConstraint max_bus_width(double pins, double weight) {
  return BusConstraint{ConstraintKind::kMaxBusWidth, {}, pins, weight};
}
BusConstraint min_ave_rate(std::string channel, double rate, double weight) {
  return BusConstraint{ConstraintKind::kMinAveRate, std::move(channel), rate,
                       weight};
}
BusConstraint max_ave_rate(std::string channel, double rate, double weight) {
  return BusConstraint{ConstraintKind::kMaxAveRate, std::move(channel), rate,
                       weight};
}
BusConstraint min_peak_rate(std::string channel, double rate, double weight) {
  return BusConstraint{ConstraintKind::kMinPeakRate, std::move(channel), rate,
                       weight};
}
BusConstraint max_peak_rate(std::string channel, double rate, double weight) {
  return BusConstraint{ConstraintKind::kMaxPeakRate, std::move(channel), rate,
                       weight};
}

namespace {

const estimate::ChannelRates& rates_for(
    const std::string& channel,
    const std::vector<estimate::ChannelRates>& rates) {
  auto it = std::find_if(
      rates.begin(), rates.end(),
      [&channel](const estimate::ChannelRates& r) { return r.channel == channel; });
  IFSYN_ASSERT_MSG(it != rates.end(),
                   "rate constraint names channel '"
                       << channel << "' which is not on this bus");
  return *it;
}

}  // namespace

double violation(const BusConstraint& constraint, int width,
                 const std::vector<estimate::ChannelRates>& rates) {
  switch (constraint.kind) {
    case ConstraintKind::kMinBusWidth:
      return std::max(0.0, constraint.bound - width);
    case ConstraintKind::kMaxBusWidth:
      return std::max(0.0, width - constraint.bound);
    case ConstraintKind::kMinAveRate:
      return std::max(0.0, constraint.bound -
                               rates_for(constraint.channel, rates).average);
    case ConstraintKind::kMaxAveRate:
      return std::max(0.0, rates_for(constraint.channel, rates).average -
                               constraint.bound);
    case ConstraintKind::kMinPeakRate:
      return std::max(0.0, constraint.bound -
                               rates_for(constraint.channel, rates).peak);
    case ConstraintKind::kMaxPeakRate:
      return std::max(0.0, rates_for(constraint.channel, rates).peak -
                               constraint.bound);
  }
  IFSYN_ASSERT(false);
  return 0;
}

double implementation_cost(const std::vector<BusConstraint>& constraints,
                           int width,
                           const std::vector<estimate::ChannelRates>& rates) {
  double cost = 0;
  for (const BusConstraint& c : constraints) {
    const double v = violation(c, width, rates);
    cost += c.weight * v * v;
  }
  return cost;
}

}  // namespace ifsyn::bus
