// Partitioner: explicit assignment, channel derivation order, grouping
// strategies, the memory auto-partition heuristic.
#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

namespace ifsyn::partition {
namespace {

using namespace spec;

/// A small two-behavior system with one scalar and one array variable,
/// shaped like Fig. 3.
System fig3_like() {
  System s("t");
  s.add_variable(Variable("X", Type::bits(16)));
  s.add_variable(Variable("MEM", Type::array(Type::bits(16), 64)));
  Process p;
  p.name = "P";
  p.locals.emplace_back("AD", Type::integer(16));
  p.body = {
      assign("X", lit(32)),
      assign(lv_idx("MEM", var("AD")), add(var("X"), lit(7))),
  };
  s.add_process(std::move(p));
  Process q;
  q.name = "Q";
  q.locals.emplace_back("COUNT", Type::integer(16));
  q.body = {assign(lv_idx("MEM", lit(60)), var("COUNT"))};
  s.add_process(std::move(q));
  return s;
}

std::vector<ModuleAssignment> fig3_assignment() {
  return {
      ModuleAssignment{"COMP_P", {"P"}, {}},
      ModuleAssignment{"COMP_MEM", {}, {"X", "MEM"}},
      ModuleAssignment{"COMP_Q", {"Q"}, {}},
  };
}

TEST(PartitionerTest, ApplyCreatesModulesAndChannels) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  EXPECT_EQ(s.modules().size(), 3u);
  EXPECT_EQ(s.channels().size(), 4u);
  EXPECT_TRUE(s.validate().is_ok());
}

TEST(PartitionerTest, ChannelNumberingFollowsFirstOccurrence) {
  // Paper Fig. 3: CH0 = P writes X, CH1 = P reads X, CH2 = P writes MEM,
  // CH3 = Q writes MEM -- derived from scan order (value before target).
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());

  const Channel* ch0 = s.find_channel("CH0");
  ASSERT_NE(ch0, nullptr);
  EXPECT_EQ(ch0->accessor, "P");
  EXPECT_EQ(ch0->variable, "X");
  EXPECT_EQ(ch0->dir, ChannelDir::kWrite);

  const Channel* ch1 = s.find_channel("CH1");
  EXPECT_EQ(ch1->variable, "X");
  EXPECT_EQ(ch1->dir, ChannelDir::kRead);

  const Channel* ch2 = s.find_channel("CH2");
  EXPECT_EQ(ch2->variable, "MEM");
  EXPECT_EQ(ch2->accessor, "P");
  EXPECT_EQ(ch2->dir, ChannelDir::kWrite);

  const Channel* ch3 = s.find_channel("CH3");
  EXPECT_EQ(ch3->accessor, "Q");
  EXPECT_EQ(ch3->dir, ChannelDir::kWrite);
}

TEST(PartitionerTest, ChannelsGetSizesFromVariableTypes) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  EXPECT_EQ(s.find_channel("CH0")->data_bits, 16);
  EXPECT_EQ(s.find_channel("CH0")->addr_bits, 0);
  EXPECT_EQ(s.find_channel("CH2")->data_bits, 16);
  EXPECT_EQ(s.find_channel("CH2")->addr_bits, 6);
  EXPECT_EQ(s.find_channel("CH2")->message_bits(), 22);
}

TEST(PartitionerTest, AccessCountsAnnotated) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  EXPECT_EQ(s.find_channel("CH0")->accesses, 1);
  EXPECT_EQ(s.find_channel("CH1")->accesses, 1);
}

TEST(PartitionerTest, ChannelPrefixAndBaseOptions) {
  System s = fig3_like();
  PartitionOptions options;
  options.channel_prefix = "ch";
  options.channel_number_base = 1;
  ASSERT_TRUE(apply_partition(s, fig3_assignment(), options).is_ok());
  EXPECT_NE(s.find_channel("ch1"), nullptr);
  EXPECT_NE(s.find_channel("ch4"), nullptr);
  EXPECT_EQ(s.find_channel("CH0"), nullptr);
}

TEST(PartitionerTest, CoLocatedAccessesProduceNoChannels) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(
                  s, {ModuleAssignment{"ALL", {"P", "Q"}, {"X", "MEM"}}})
                  .is_ok());
  EXPECT_TRUE(s.channels().empty());
}

TEST(PartitionerTest, UnassignedEntityRejected) {
  System s = fig3_like();
  auto assignment = fig3_assignment();
  assignment[1].variables = {"X"};  // MEM unassigned
  EXPECT_EQ(apply_partition(s, assignment).code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, DoublyAssignedEntityRejected) {
  System s = fig3_like();
  auto assignment = fig3_assignment();
  assignment[0].processes = {"P"};
  assignment[2].processes = {"Q", "P"};
  EXPECT_EQ(apply_partition(s, assignment).code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, UnknownEntityRejected) {
  System s = fig3_like();
  auto assignment = fig3_assignment();
  assignment[0].processes.push_back("GHOST");
  EXPECT_EQ(apply_partition(s, assignment).code(), StatusCode::kNotFound);
}

TEST(PartitionerTest, GroupAllChannels) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  ASSERT_TRUE(group_all_channels(s, "B").is_ok());
  const BusGroup* bus = s.find_bus("B");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->channel_names.size(), 4u);
  for (const auto& ch : s.channels()) EXPECT_EQ(ch->bus, "B");
}

TEST(PartitionerTest, GroupChannelsRejectsDoubleGrouping) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  ASSERT_TRUE(group_channels(s, "B1", {"CH0", "CH1"}).is_ok());
  EXPECT_EQ(group_channels(s, "B2", {"CH1"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(group_channels(s, "B1", {"CH2"}).code(),
            StatusCode::kInvalidArgument);  // bus name reuse
  EXPECT_EQ(group_channels(s, "B3", {"NOPE"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(group_channels(s, "B4", {}).code(), StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, GroupByModulePair) {
  System s = fig3_like();
  ASSERT_TRUE(apply_partition(s, fig3_assignment()).is_ok());
  auto buses = group_by_module_pair(s);
  ASSERT_TRUE(buses.is_ok()) << buses.status();
  // P->MEM-component traffic and Q->MEM-component traffic: two pairs.
  ASSERT_EQ(buses->size(), 2u);
  const BusGroup* b0 = s.find_bus((*buses)[0]);
  ASSERT_NE(b0, nullptr);
  EXPECT_EQ(b0->channel_names.size(), 3u);  // CH0, CH1, CH2 from P
  const BusGroup* b1 = s.find_bus((*buses)[1]);
  EXPECT_EQ(b1->channel_names.size(), 1u);  // CH3 from Q
}

TEST(PartitionerTest, AutoPartitionMovesLargeArraysToMemory) {
  System s = fig3_like();
  // MEM is 64*16 = 1024 bits; X is 16. Threshold 512 moves only MEM.
  ASSERT_TRUE(auto_partition(s, "MAIN", "MEMCHIP", 512).is_ok());
  EXPECT_EQ(s.module_of_variable("MEM")->name, "MEMCHIP");
  EXPECT_EQ(s.module_of_variable("X")->name, "MAIN");
  EXPECT_EQ(s.module_of_process("P")->name, "MAIN");
  // Only MEM accesses cross the boundary now.
  for (const auto& ch : s.channels()) EXPECT_EQ(ch->variable, "MEM");
  EXPECT_EQ(s.channels().size(), 2u);  // P writes MEM, Q writes MEM
}

TEST(PartitionerTest, DeriveChannelsRequiresModules) {
  System s = fig3_like();
  EXPECT_EQ(derive_channels(s).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ifsyn::partition
