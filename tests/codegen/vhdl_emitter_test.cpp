// VHDL emission: the Fig. 4 record/procedure shapes and Fig. 5 process
// shapes, rendered from a generated refined system.
#include "codegen/vhdl_emitter.hpp"

#include <gtest/gtest.h>

#include "protocol/protocol_generator.hpp"
#include "suite/fig3_example.hpp"

namespace ifsyn::codegen {
namespace {

using namespace spec;

System refined_fig3() {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenerator generator;
  Status status = generator.generate_all(system);
  EXPECT_TRUE(status.is_ok()) << status;
  return system;
}

TEST(VhdlEmitterTest, TypeRendering) {
  VhdlEmitter emitter;
  EXPECT_EQ(emitter.emit_type(Type::bits(8)), "bit_vector(7 downto 0)");
  EXPECT_EQ(emitter.emit_type(Type::bits(1)), "bit");
  EXPECT_EQ(emitter.emit_type(Type::integer()), "integer");
  EXPECT_EQ(emitter.emit_type(Type::array(Type::bits(16), 64)),
            "array (0 to 63) of bit_vector(15 downto 0)");
}

TEST(VhdlEmitterTest, BusRecordMatchesFig4) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const std::string decls = emitter.emit_bus_declarations(refined);
  // Fig. 4:
  //   type HandShakeBus is record
  //     START, DONE : bit;
  //     ID : bit_vector(1 downto 0);
  //     DATA : bit_vector(7 downto 0);
  //   end record;
  //   signal B : HandShakeBus;
  EXPECT_NE(decls.find("type HandShakeBus is record"), std::string::npos)
      << decls;
  EXPECT_NE(decls.find("START : bit;"), std::string::npos);
  EXPECT_NE(decls.find("DONE : bit;"), std::string::npos);
  EXPECT_NE(decls.find("ID : bit_vector(1 downto 0);"), std::string::npos);
  EXPECT_NE(decls.find("DATA : bit_vector(7 downto 0);"), std::string::npos);
  EXPECT_NE(decls.find("signal B : HandShakeBus;"), std::string::npos);
}

TEST(VhdlEmitterTest, SendProcedureMatchesFig4Shape) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const Procedure* send = refined.find_procedure("SendCH0");
  ASSERT_NE(send, nullptr);
  const std::string text = emitter.emit_procedure(*send);
  EXPECT_NE(text.find(
                "procedure SendCH0(txdata : in bit_vector(15 downto 0)) is"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("B.ID <= \"00\";"), std::string::npos);
  EXPECT_NE(text.find("for J in 1 to 2 loop"), std::string::npos);
  EXPECT_NE(text.find("B.DATA <= txdata(((8 * J) - 1) downto (8 * (J - 1)));"),
            std::string::npos);
  EXPECT_NE(text.find("B.START <= '1';"), std::string::npos);
  EXPECT_NE(text.find("wait until (B.DONE = '1');"), std::string::npos);
  EXPECT_NE(text.find("B.START <= '0';"), std::string::npos);
  EXPECT_NE(text.find("end SendCH0;"), std::string::npos);
}

TEST(VhdlEmitterTest, ReceiveGuardUsesCharacterAndStringLiterals) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const Procedure* serve = refined.find_procedure("ServeCH0");
  ASSERT_NE(serve, nullptr);
  const std::string text = emitter.emit_procedure(*serve);
  // Fig. 4: wait until (B.START = '1') and (B.ID = "00");
  EXPECT_NE(text.find("wait until ((B.START = '1') and (B.ID = \"00\"));"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("B.DONE <= '1';"), std::string::npos);
}

TEST(VhdlEmitterTest, RewrittenProcessMatchesFig5) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const std::string text = emitter.emit_process(*refined.find_process("P"));
  EXPECT_NE(text.find("P : process"), std::string::npos) << text;
  EXPECT_NE(text.find("SendCH0(32);"), std::string::npos);
  EXPECT_NE(text.find("ReceiveCH1(X_tmp0);"), std::string::npos);
  EXPECT_NE(text.find("SendCH2(AD"), std::string::npos);
  // One-shot behaviors end with a final wait in VHDL.
  EXPECT_NE(text.find("wait;"), std::string::npos);
  EXPECT_NE(text.find("end process P;"), std::string::npos);
}

TEST(VhdlEmitterTest, ServerProcessDispatchesLikeFig5) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const std::string text =
      emitter.emit_process(*refined.find_process("MEMproc"));
  EXPECT_NE(text.find("MEMproc : process"), std::string::npos) << text;
  EXPECT_NE(text.find("elsif"), std::string::npos);  // flattened dispatch
  EXPECT_NE(text.find("ServeCH2();"), std::string::npos);
  EXPECT_NE(text.find("ServeCH3();"), std::string::npos);
  EXPECT_NE(text.find("wait on B.START;"), std::string::npos);
}

TEST(VhdlEmitterTest, WholeSystemIsSelfContained) {
  VhdlEmitter emitter;
  System refined = refined_fig3();
  const std::string text = emitter.emit_system(refined);
  EXPECT_NE(text.find("entity fig3_sys is"), std::string::npos);
  EXPECT_NE(text.find("architecture refined of fig3_sys is"),
            std::string::npos);
  EXPECT_NE(text.find("constant CLOCK_PERIOD : time := 10 ns;"),
            std::string::npos);
  EXPECT_NE(text.find("shared variable MEM"), std::string::npos);
  EXPECT_NE(text.find("end refined;"), std::string::npos);
  // All four channels' procedures are present.
  for (const char* name :
       {"SendCH0", "ReceiveCH1", "SendCH2", "SendCH3", "ServeCH0",
        "ServeCH1", "ServeCH2", "ServeCH3"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(VhdlEmitterTest, HardwiredPortsEmitPerChannelSignals) {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.protocol = ProtocolKind::kHardwiredPort;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());
  VhdlEmitter emitter;
  const std::string decls = emitter.emit_bus_declarations(system);
  // Four dedicated port records, no shared HandShakeBus.
  EXPECT_EQ(decls.find("HandShakeBus"), std::string::npos) << decls;
  for (const char* name : {"B_CH0_t", "B_CH1_t", "B_CH2_t", "B_CH3_t"}) {
    EXPECT_NE(decls.find(name), std::string::npos) << name;
  }
  // The write port to X is message-wide (16 bits, single word).
  EXPECT_NE(decls.find("DATA : bit_vector(15 downto 0);"),
            std::string::npos);
}

TEST(VhdlEmitterTest, StrobeProtocolEmitsParityAssignments) {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.protocol = ProtocolKind::kHalfHandshake;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());
  VhdlEmitter emitter;
  const std::string text =
      emitter.emit_procedure(*system.find_procedure("SendCH0"));
  EXPECT_NE(text.find("B.START <= (J mod 2);"), std::string::npos) << text;
  EXPECT_EQ(text.find("B.DONE"), std::string::npos);  // no ack line
}

TEST(VhdlEmitterTest, WaitForUsesClockConstant) {
  VhdlEmitter emitter;
  EXPECT_EQ(emitter.emit_stmt(*wait_for(2), 0),
            "wait for 2 * CLOCK_PERIOD;\n");
  VhdlOptions options;
  options.clock_constant = "T_CLK";
  VhdlEmitter custom(options);
  EXPECT_EQ(custom.emit_stmt(*wait_for(2), 0), "wait for 2 * T_CLK;\n");
}

TEST(VhdlEmitterTest, BusLockEmitsComment) {
  VhdlEmitter emitter;
  const std::string text = emitter.emit_stmt(*bus_acquire("B"), 0);
  EXPECT_NE(text.find("-- acquire bus B"), std::string::npos);
}

}  // namespace
}  // namespace ifsyn::codegen
