// Status / Result error plumbing.
#include "util/status.hpp"

#include <gtest/gtest.h>

namespace ifsyn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = infeasible("no feasible buswidth in [1, 23]");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.to_string(), "INFEASIBLE: no feasible buswidth in [1, 23]");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(simulation_error("x").code(), StatusCode::kSimulationError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::ok(), Status());
  EXPECT_EQ(not_found("a"), not_found("a"));
  EXPECT_NE(not_found("a"), not_found("b"));
  EXPECT_NE(not_found("a"), invalid_argument("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kUnsupported), "UNSUPPORTED");
  EXPECT_STREQ(status_code_name(StatusCode::kSimulationError),
               "SIMULATION_ERROR");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(not_found("nope"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAccessOnErrorAsserts) {
  Result<int> r(not_found("nope"));
  EXPECT_THROW(r.value(), InternalError);
}

TEST(ResultTest, ConstructionFromOkStatusAsserts) {
  EXPECT_THROW(Result<int>(Status::ok()), InternalError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status helper_propagates(bool fail) {
  IFSYN_RETURN_IF_ERROR(fail ? invalid_argument("inner") : Status::ok());
  return Status::ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(helper_propagates(false).is_ok());
  EXPECT_EQ(helper_propagates(true).code(), StatusCode::kInvalidArgument);
}

TEST(AssertTest, MessageContainsExpressionAndLocation) {
  try {
    IFSYN_ASSERT_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("status_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace ifsyn
