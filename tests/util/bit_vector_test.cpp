// BitVector: construction, bit/slice access, arithmetic, comparisons,
// string round-trips -- including widths beyond one 64-bit word, which the
// FLC's 23-bit messages never need but wide memories do.
#include "util/bit_vector.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace ifsyn {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector bv;
  EXPECT_EQ(bv.width(), 0);
  EXPECT_TRUE(bv.empty());
  EXPECT_TRUE(bv.is_zero());
}

TEST(BitVectorTest, ZeroInitialized) {
  BitVector bv(130);
  EXPECT_EQ(bv.width(), 130);
  EXPECT_TRUE(bv.is_zero());
  for (int i = 0; i < 130; ++i) EXPECT_FALSE(bv.bit(i));
}

TEST(BitVectorTest, FromUintMasksToWidth) {
  BitVector bv = BitVector::from_uint(4, 0xff);
  EXPECT_EQ(bv.to_uint(), 0xfu);
  EXPECT_EQ(bv.width(), 4);
}

TEST(BitVectorTest, FromIntTwosComplement) {
  BitVector bv = BitVector::from_int(8, -1);
  EXPECT_EQ(bv.to_uint(), 0xffu);
  EXPECT_EQ(bv.to_int(), -1);
  EXPECT_EQ(BitVector::from_int(8, -128).to_int(), -128);
  EXPECT_EQ(BitVector::from_int(8, 127).to_int(), 127);
}

TEST(BitVectorTest, FromIntNegativeWideWidth) {
  // Sign must extend across word boundaries.
  BitVector bv = BitVector::from_int(100, -2);
  for (int i = 1; i < 100; ++i) EXPECT_TRUE(bv.bit(i)) << i;
  EXPECT_FALSE(bv.bit(0));
}

TEST(BitVectorTest, SetAndGetBits) {
  BitVector bv(70);
  bv.set_bit(0, true);
  bv.set_bit(63, true);
  bv.set_bit(64, true);
  bv.set_bit(69, true);
  EXPECT_TRUE(bv.bit(0));
  EXPECT_TRUE(bv.bit(63));
  EXPECT_TRUE(bv.bit(64));
  EXPECT_TRUE(bv.bit(69));
  EXPECT_FALSE(bv.bit(1));
  bv.set_bit(63, false);
  EXPECT_FALSE(bv.bit(63));
}

TEST(BitVectorTest, BinaryStringRoundTrip) {
  const std::string s = "1010110011110000";
  BitVector bv = BitVector::from_binary_string(s);
  EXPECT_EQ(bv.width(), 16);
  EXPECT_EQ(bv.to_binary_string(), s);
  EXPECT_EQ(bv.to_uint(), 0xacf0u);
}

TEST(BitVectorTest, UnderscoresIgnoredInLiterals) {
  BitVector bv = BitVector::from_binary_string("0010_1100");
  EXPECT_EQ(bv.width(), 8);
  EXPECT_EQ(bv.to_uint(), 0x2cu);
}

TEST(BitVectorTest, SliceDowntoSemantics) {
  BitVector bv = BitVector::from_uint(16, 0xabcd);
  EXPECT_EQ(bv.slice(15, 8).to_uint(), 0xabu);
  EXPECT_EQ(bv.slice(7, 0).to_uint(), 0xcdu);
  EXPECT_EQ(bv.slice(11, 4).to_uint(), 0xbcu);
  EXPECT_EQ(bv.slice(0, 0).width(), 1);
}

TEST(BitVectorTest, SliceAcrossWordBoundary) {
  BitVector bv(128);
  bv.set_slice(71, 56, BitVector::from_uint(16, 0xbeef));
  EXPECT_EQ(bv.slice(71, 56).to_uint(), 0xbeefu);
  EXPECT_EQ(bv.slice(55, 0).to_uint(), 0u);
}

TEST(BitVectorTest, SetSliceWidthMismatchAsserts) {
  BitVector bv(16);
  EXPECT_THROW(bv.set_slice(7, 0, BitVector(9)), InternalError);
}

TEST(BitVectorTest, SliceBoundsChecked) {
  BitVector bv(8);
  EXPECT_THROW(bv.slice(8, 0), InternalError);
  EXPECT_THROW(bv.slice(3, 4), InternalError);
  EXPECT_THROW(bv.bit(8), InternalError);
  EXPECT_THROW(bv.bit(-1), InternalError);
}

TEST(BitVectorTest, ConcatPutsLeftOperandHigh) {
  // VHDL a & b: `a` becomes the high-order part -- the generated Send
  // procedures rely on this for addr & data message packing.
  BitVector addr = BitVector::from_uint(7, 0x55);
  BitVector data = BitVector::from_uint(16, 0x1234);
  BitVector msg = addr.concat(data);
  EXPECT_EQ(msg.width(), 23);
  EXPECT_EQ(msg.slice(22, 16).to_uint(), 0x55u);
  EXPECT_EQ(msg.slice(15, 0).to_uint(), 0x1234u);
}

TEST(BitVectorTest, ConcatWithEmpty) {
  BitVector data = BitVector::from_uint(8, 0x12);
  EXPECT_EQ(BitVector().concat(data), data);
  EXPECT_EQ(data.concat(BitVector()), data);
}

TEST(BitVectorTest, ResizeTruncatesAndExtends) {
  BitVector bv = BitVector::from_uint(16, 0xabcd);
  EXPECT_EQ(bv.resized(8).to_uint(), 0xcdu);
  EXPECT_EQ(bv.resized(24).to_uint(), 0xabcdu);
  EXPECT_EQ(bv.resized(24).width(), 24);
}

TEST(BitVectorTest, AdditionWrapsModulo) {
  BitVector a = BitVector::from_uint(8, 200);
  BitVector b = BitVector::from_uint(8, 100);
  EXPECT_EQ((a + b).to_uint(), 44u);  // 300 mod 256
}

TEST(BitVectorTest, AdditionCarriesAcrossWords) {
  BitVector a(128);
  a.set_slice(63, 0, BitVector::from_uint(64, ~std::uint64_t{0}));
  BitVector one = BitVector::from_uint(128, 1);
  BitVector sum = a + one;
  EXPECT_TRUE(sum.slice(63, 0).is_zero());
  EXPECT_TRUE(sum.bit(64));
}

TEST(BitVectorTest, SubtractionWraps) {
  BitVector a = BitVector::from_uint(8, 5);
  BitVector b = BitVector::from_uint(8, 10);
  EXPECT_EQ((a - b).to_uint(), 251u);
}

TEST(BitVectorTest, SubtractionBorrowsAcrossWords) {
  BitVector a(128);
  a.set_bit(64, true);  // 2^64
  BitVector one = BitVector::from_uint(128, 1);
  BitVector diff = a - one;
  EXPECT_FALSE(diff.bit(64));
  EXPECT_EQ(diff.slice(63, 0).to_uint(), ~std::uint64_t{0});
}

TEST(BitVectorTest, BitwiseOps) {
  BitVector a = BitVector::from_uint(8, 0b11001100);
  BitVector b = BitVector::from_uint(8, 0b10101010);
  EXPECT_EQ((a & b).to_uint(), 0b10001000u);
  EXPECT_EQ((a | b).to_uint(), 0b11101110u);
  EXPECT_EQ((a ^ b).to_uint(), 0b01100110u);
  EXPECT_EQ((~a).to_uint(), 0b00110011u);
}

TEST(BitVectorTest, ComplementClearsPadding) {
  BitVector a(5);
  BitVector inverted = ~a;
  EXPECT_EQ(inverted.to_uint(), 0x1fu);  // only 5 bits set
}

TEST(BitVectorTest, EqualityRequiresSameWidth) {
  EXPECT_NE(BitVector::from_uint(8, 5), BitVector::from_uint(9, 5));
  EXPECT_EQ(BitVector::from_uint(8, 5), BitVector::from_uint(8, 5));
}

TEST(BitVectorTest, UnsignedLess) {
  EXPECT_TRUE(BitVector::from_uint(8, 3).unsigned_less(
      BitVector::from_uint(8, 200)));
  EXPECT_FALSE(BitVector::from_uint(8, 200).unsigned_less(
      BitVector::from_uint(8, 3)));
  BitVector wide_small(128), wide_big(128);
  wide_big.set_bit(100, true);
  EXPECT_TRUE(wide_small.unsigned_less(wide_big));
}

TEST(BitVectorTest, HexString) {
  EXPECT_EQ(BitVector::from_uint(16, 0xabcd).to_hex_string(), "0xabcd");
  EXPECT_EQ(BitVector::from_uint(7, 0x55).to_hex_string(), "0x55");
  EXPECT_EQ(BitVector::from_uint(4, 0).to_hex_string(), "0x0");
}

TEST(BitVectorTest, ToUintRejectsOversizedValues) {
  BitVector bv(70);
  bv.set_bit(65, true);
  EXPECT_THROW(bv.to_uint(), InternalError);
}

TEST(BitVectorTest, ToIntRequiresNarrowWidth) {
  EXPECT_THROW(BitVector(65).to_int(), InternalError);
  EXPECT_THROW(BitVector(0).to_int(), InternalError);
}

/// Property sweep: slicing a message into W-bit words and reassembling is
/// the identity -- the invariant the generated Send/Receive procedure
/// pairs depend on (Fig. 4's two transfers of 8 bits each).
class WordSlicingProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WordSlicingProperty, SliceAndReassembleIsIdentity) {
  const auto [msg_bits, width] = GetParam();
  // Deterministic pseudo-random payload.
  BitVector msg(msg_bits);
  std::uint64_t state = 0x9e3779b97f4a7c15ull + msg_bits * 131 + width;
  for (int i = 0; i < msg_bits; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    msg.set_bit(i, (state >> 62) & 1);
  }

  BitVector rebuilt(msg_bits);
  for (int lo = 0; lo < msg_bits; lo += width) {
    const int hi = std::min(lo + width - 1, msg_bits - 1);
    rebuilt.set_slice(hi, lo, msg.slice(hi, lo));
  }
  EXPECT_EQ(rebuilt, msg);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, WordSlicingProperty,
    ::testing::Combine(::testing::Values(1, 7, 8, 16, 23, 24, 64, 65, 130),
                       ::testing::Values(1, 2, 3, 8, 16, 23, 64)));

/// Property: from_uint/to_uint round-trips for every width <= 64.
class UintRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UintRoundTrip, RoundTrips) {
  const int width = GetParam();
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{0x5a5a5a5a5a5a5a5a},
                          ~std::uint64_t{0}}) {
    EXPECT_EQ(BitVector::from_uint(width, v).to_uint(), v & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, UintRoundTrip,
                         ::testing::Values(1, 2, 7, 8, 16, 23, 32, 63, 64));

}  // namespace
}  // namespace ifsyn
