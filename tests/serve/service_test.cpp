// End-to-end tests of the serve front end's contracts:
//
//   - determinism: a request's report is byte-identical run alone, run
//     concurrently against a loaded pool, and run from warm caches;
//   - admission control: a saturated bounded queue answers with
//     structured admission_rejected errors — every future resolves,
//     nothing hangs (the asan preset runs this file too);
//   - deadlines: an expired request yields a structured
//     deadline_exceeded error;
//   - hardened ingestion: malformed specs and requests come back as
//     structured error responses.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "sim/interpreter.hpp"

namespace ifsyn::serve {
namespace {

Request check_request(const std::string& id, const std::string& target) {
  Request request;
  request.id = id;
  request.op = RequestOp::kCheck;
  request.target = target;
  return request;
}

Request explore_request(const std::string& id, const std::string& target,
                        int top_k = 1) {
  Request request;
  request.id = id;
  request.op = RequestOp::kExplore;
  request.target = target;
  request.options.top_k = top_k;
  return request;
}

TEST(ServiceTest, ExecutesEveryOperation) {
  Service service;
  Response check = service.execute(check_request("c", "builtin:fig3"));
  EXPECT_TRUE(check.ok) << check.error.message;
  EXPECT_NE(check.report.find("check clean"), std::string::npos);
  EXPECT_FALSE(check.spec_hash.empty());

  Request synth;
  synth.id = "s";
  synth.op = RequestOp::kSynth;
  synth.target = "builtin:fig3";
  Response synthesized = service.execute(synth);
  EXPECT_TRUE(synthesized.ok) << synthesized.error.message;
  EXPECT_NE(synthesized.report.find("Interface synthesis report"),
            std::string::npos);

  Response explored = service.execute(explore_request("e", "builtin:fig3"));
  EXPECT_TRUE(explored.ok) << explored.error.message;
  EXPECT_NE(explored.report.find("Pareto"), std::string::npos);

  Request metrics;
  metrics.id = "m";
  metrics.op = RequestOp::kMetrics;
  Response snapshot = service.execute(metrics);
  EXPECT_TRUE(snapshot.ok);
  EXPECT_NE(snapshot.report.find("ifsyn_serve_program_cache_hits_total"),
            std::string::npos);
}

TEST(ServiceTest, ReportsAreByteIdenticalAloneConcurrentlyAndWarm) {
  // Reference: a fresh service executing the request cold and alone.
  std::string reference;
  {
    Service service;
    reference = service.execute(explore_request("r", "builtin:fig3")).report;
    ASSERT_FALSE(reference.empty());
  }

  ServiceOptions options;
  options.workers = 4;
  Service service(options);
  service.start();
  // Concurrent + cold, concurrent + warm, different request mix around it.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(
        explore_request("e" + std::to_string(i), "builtin:fig3")));
    futures.push_back(service.submit(
        check_request("c" + std::to_string(i), "builtin:fig3")));
  }
  for (auto& future : futures) {
    Response response = future.get();
    ASSERT_TRUE(response.ok) << response.error.message;
    if (response.op == "explore") {
      EXPECT_EQ(response.report, reference);
    }
  }
  service.stop();

  // Warm shared stores were actually exercised. (The program cache only
  // sees traffic on the VM engine; the AST reference leg bypasses it.)
  const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
  EXPECT_GT(snapshot.find("serve.spec_cache.hits")->counter, 0u);
  EXPECT_GT(snapshot.find("serve.estimation_cache.hits")->counter, 0u);
  if (sim::engine_from_env() == sim::Engine::kVm) {
    EXPECT_GT(snapshot.find("serve.program_cache.hits")->counter, 0u);
  }
}

TEST(ServiceTest, SynthReportIdenticalOnProgramCacheHit) {
  Service service;
  Request synth;
  synth.op = RequestOp::kSynth;
  synth.target = "builtin:fig3";
  synth.id = "cold";
  const Response cold = service.execute(synth);
  ASSERT_TRUE(cold.ok) << cold.error.message;
  synth.id = "warm";
  const Response warm = service.execute(synth);
  ASSERT_TRUE(warm.ok);
  // The report embeds deterministic sim metrics (vm compile counts
  // included); a bytecode-cache hit must not change a byte.
  EXPECT_EQ(cold.report, warm.report);
  if (sim::engine_from_env() == sim::Engine::kVm) {
    EXPECT_GT(service.metrics_snapshot().find("serve.program_cache.hits")
                  ->counter,
              0u);
  }
}

TEST(ServiceTest, SaturatedQueueRejectsStructurallyAndNeverHangs) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  Service service(options);
  service.start();

  // Flood far past capacity. Every future must resolve: accepted ones
  // with results, the overflow with admission_rejected.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.submit(
        check_request("f" + std::to_string(i), "builtin:fig3")));
  }
  int rejected = 0;
  for (auto& future : futures) {
    Response response = future.get();
    if (!response.ok) {
      EXPECT_EQ(response.error.code, "admission_rejected");
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  service.stop();
  EXPECT_EQ(service.metrics_snapshot()
                .find("serve.requests.admission_rejected")
                ->counter,
            static_cast<std::uint64_t>(rejected));
}

TEST(ServiceTest, ExpiredDeadlineYieldsStructuredError) {
  ServiceOptions options;
  options.workers = 1;
  Service service(options);
  service.start();
  // Pile enough work on the single worker that a trailing request's 1 ms
  // deadline is long gone by the time it reaches the front of the queue
  // (each full-sweep flc exploration takes a few ms even warm; either
  // deadline check — at dequeue or post-execution — must fire).
  std::vector<std::future<Response>> slow;
  for (int i = 0; i < 8; ++i) {
    Request heavy = explore_request("slow" + std::to_string(i),
                                    "builtin:flc", /*top_k=*/0);
    heavy.options.protocols = {spec::ProtocolKind::kFullHandshake,
                               spec::ProtocolKind::kHalfHandshake,
                               spec::ProtocolKind::kFixedDelay};
    heavy.options.alt_groupings = true;
    slow.push_back(service.submit(std::move(heavy)));
  }
  Request quick = check_request("quick", "builtin:fig3");
  quick.deadline_ms = 1;
  std::future<Response> expired = service.submit(std::move(quick));

  Response response = expired.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "deadline_exceeded");
  for (auto& future : slow) EXPECT_TRUE(future.get().ok);
  service.stop();
  EXPECT_EQ(service.metrics_snapshot()
                .find("serve.requests.deadline_exceeded")
                ->counter,
            1u);
}

TEST(ServiceTest, MalformedSpecsAreStructuredErrors) {
  Service service;
  Request truncated;
  truncated.op = RequestOp::kCheck;
  truncated.spec_text = "system t;\nprocess P {";
  Response response = service.execute(truncated);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "invalid_argument");
  EXPECT_NE(response.error.message.find("line"), std::string::npos);

  Request garbage;
  garbage.op = RequestOp::kSynth;
  garbage.spec_text = "\x7f\x03not a spec at all";
  Response garbage_response = service.execute(garbage);
  EXPECT_FALSE(garbage_response.ok);

  Request missing;
  missing.op = RequestOp::kSynth;
  missing.target = "/no/such/spec.ifs";
  EXPECT_EQ(service.execute(missing).error.code, "not_found");
}

TEST(ServiceTest, RequestParsingRejectsUnknownFieldsAndOps) {
  for (const char* bad : {
           R"({"op": "transmogrify", "spec": "builtin:fig3"})",
           R"({"op": "synth"})",
           R"({"op": "synth", "spec": "a", "spec_text": "b"})",
           R"({"op": "synth", "spec": "a", "bogus": 1})",
           R"({"op": "synth", "spec": "a", "options": {"threads": 1.5}})",
           R"({"spec": "builtin:fig3"})",
       }) {
    Result<Json> json = parse_json(bad);
    ASSERT_TRUE(json.is_ok()) << bad;
    EXPECT_FALSE(parse_request(*json).is_ok()) << bad;
  }
}

TEST(ServiceTest, SubmitWithoutStartIsRejectedNotHung) {
  Service service;
  Response response =
      service.submit(check_request("x", "builtin:fig3")).get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "admission_rejected");
}

}  // namespace
}  // namespace ifsyn::serve
