// End-to-end tests of the serve front end's contracts:
//
//   - determinism: a request's report is byte-identical run alone, run
//     concurrently against a loaded pool, and run from warm caches;
//   - admission control: a saturated bounded queue answers with
//     structured admission_rejected errors — every future resolves,
//     nothing hangs (the asan preset runs this file too);
//   - deadlines: an expired request yields a structured
//     deadline_exceeded error;
//   - hardened ingestion: malformed specs and requests come back as
//     structured error responses.
//   - observability: tracing on vs off never changes a report byte;
//     the service-wide trace is schema-valid with every request
//     flow-linked; unwritable trace files are structured errors; the
//     stats op answers over the wire format; slow requests are captured.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace_sink.hpp"
#include "serve/json.hpp"
#include "sim/interpreter.hpp"

namespace ifsyn::serve {
namespace {

Request check_request(const std::string& id, const std::string& target) {
  Request request;
  request.id = id;
  request.op = RequestOp::kCheck;
  request.target = target;
  return request;
}

Request explore_request(const std::string& id, const std::string& target,
                        int top_k = 1) {
  Request request;
  request.id = id;
  request.op = RequestOp::kExplore;
  request.target = target;
  request.options.top_k = top_k;
  return request;
}

TEST(ServiceTest, ExecutesEveryOperation) {
  Service service;
  Response check = service.execute(check_request("c", "builtin:fig3"));
  EXPECT_TRUE(check.ok) << check.error.message;
  EXPECT_NE(check.report.find("check clean"), std::string::npos);
  EXPECT_FALSE(check.spec_hash.empty());

  Request synth;
  synth.id = "s";
  synth.op = RequestOp::kSynth;
  synth.target = "builtin:fig3";
  Response synthesized = service.execute(synth);
  EXPECT_TRUE(synthesized.ok) << synthesized.error.message;
  EXPECT_NE(synthesized.report.find("Interface synthesis report"),
            std::string::npos);

  Response explored = service.execute(explore_request("e", "builtin:fig3"));
  EXPECT_TRUE(explored.ok) << explored.error.message;
  EXPECT_NE(explored.report.find("Pareto"), std::string::npos);

  Request metrics;
  metrics.id = "m";
  metrics.op = RequestOp::kMetrics;
  Response snapshot = service.execute(metrics);
  EXPECT_TRUE(snapshot.ok);
  EXPECT_NE(snapshot.report.find("ifsyn_serve_program_cache_hits_total"),
            std::string::npos);
}

TEST(ServiceTest, ConformFlagMinesTheTraceOnTheCheckPath) {
  Service service;

  // Opt-in: a plain check request never pays for a simulation.
  Response plain = service.execute(check_request("p", "builtin:fig3"));
  ASSERT_TRUE(plain.ok) << plain.error.message;
  EXPECT_EQ(plain.report.find("conform"), std::string::npos);

  Request request = check_request("c", "builtin:fig3");
  request.options.conform = true;
  request.options.arbitrate = true;  // fig3's bus is multi-master
  Response response = service.execute(request);
  ASSERT_TRUE(response.ok) << response.error.message;
  EXPECT_NE(response.report.find("check clean"), std::string::npos);
  EXPECT_NE(response.report.find("conform clean"), std::string::npos);
  EXPECT_NE(response.report.find("0 disagreement(s)"), std::string::npos);

  // The determinism contract extends to the mined section.
  Response again = service.execute(request);
  ASSERT_TRUE(again.ok) << again.error.message;
  EXPECT_EQ(again.report, response.report);

  // Counters surface in /stats and prometheus; the plain check request
  // did not bump them.
  Request stats;
  stats.id = "s";
  stats.op = RequestOp::kStats;
  Response stats_response = service.execute(stats);
  ASSERT_TRUE(stats_response.ok);
  EXPECT_NE(stats_response.report.find("\"conform_requests\":2"),
            std::string::npos)
      << stats_response.report;
  EXPECT_NE(stats_response.report.find("\"conform_clean\":2"),
            std::string::npos);
  EXPECT_NE(stats_response.report.find("\"conform_disagreements\":0"),
            std::string::npos);

  Request metrics;
  metrics.id = "m";
  metrics.op = RequestOp::kMetrics;
  Response snapshot = service.execute(metrics);
  ASSERT_TRUE(snapshot.ok);
  EXPECT_NE(snapshot.report.find("ifsyn_check_conform_requests_total 2"),
            std::string::npos)
      << snapshot.report;
}

TEST(ServiceTest, ReportsAreByteIdenticalAloneConcurrentlyAndWarm) {
  // Reference: a fresh service executing the request cold and alone.
  std::string reference;
  {
    Service service;
    reference = service.execute(explore_request("r", "builtin:fig3")).report;
    ASSERT_FALSE(reference.empty());
  }

  ServiceOptions options;
  options.workers = 4;
  Service service(options);
  service.start();
  // Concurrent + cold, concurrent + warm, different request mix around it.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(
        explore_request("e" + std::to_string(i), "builtin:fig3")));
    futures.push_back(service.submit(
        check_request("c" + std::to_string(i), "builtin:fig3")));
  }
  for (auto& future : futures) {
    Response response = future.get();
    ASSERT_TRUE(response.ok) << response.error.message;
    if (response.op == "explore") {
      EXPECT_EQ(response.report, reference);
    }
  }
  service.stop();

  // Warm shared stores were actually exercised. (The program cache only
  // sees traffic on the VM engine; the AST reference leg bypasses it.)
  const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
  EXPECT_GT(snapshot.find("serve.spec_cache.hits")->counter, 0u);
  EXPECT_GT(snapshot.find("serve.estimation_cache.hits")->counter, 0u);
  if (sim::engine_from_env() == sim::Engine::kVm) {
    EXPECT_GT(snapshot.find("serve.program_cache.hits")->counter, 0u);
  }
}

TEST(ServiceTest, SynthReportIdenticalOnProgramCacheHit) {
  Service service;
  Request synth;
  synth.op = RequestOp::kSynth;
  synth.target = "builtin:fig3";
  synth.id = "cold";
  const Response cold = service.execute(synth);
  ASSERT_TRUE(cold.ok) << cold.error.message;
  synth.id = "warm";
  const Response warm = service.execute(synth);
  ASSERT_TRUE(warm.ok);
  // The report embeds deterministic sim metrics (vm compile counts
  // included); a bytecode-cache hit must not change a byte.
  EXPECT_EQ(cold.report, warm.report);
  if (sim::engine_from_env() == sim::Engine::kVm) {
    EXPECT_GT(service.metrics_snapshot().find("serve.program_cache.hits")
                  ->counter,
              0u);
  }
}

TEST(ServiceTest, SaturatedQueueRejectsStructurallyAndNeverHangs) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  Service service(options);
  service.start();

  // Flood far past capacity. Every future must resolve: accepted ones
  // with results, the overflow with admission_rejected.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.submit(
        check_request("f" + std::to_string(i), "builtin:fig3")));
  }
  int rejected = 0;
  for (auto& future : futures) {
    Response response = future.get();
    if (!response.ok) {
      EXPECT_EQ(response.error.code, "admission_rejected");
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  service.stop();
  EXPECT_EQ(service.metrics_snapshot()
                .find("serve.requests.admission_rejected")
                ->counter,
            static_cast<std::uint64_t>(rejected));
}

TEST(ServiceTest, ExpiredDeadlineYieldsStructuredError) {
  ServiceOptions options;
  options.workers = 1;
  Service service(options);
  service.start();
  // Pile enough work on the single worker that a trailing request's 1 ms
  // deadline is long gone by the time it reaches the front of the queue
  // (each full-sweep flc exploration takes a few ms even warm; either
  // deadline check — at dequeue or post-execution — must fire).
  std::vector<std::future<Response>> slow;
  for (int i = 0; i < 8; ++i) {
    Request heavy = explore_request("slow" + std::to_string(i),
                                    "builtin:flc", /*top_k=*/0);
    heavy.options.protocols = {spec::ProtocolKind::kFullHandshake,
                               spec::ProtocolKind::kHalfHandshake,
                               spec::ProtocolKind::kFixedDelay};
    heavy.options.alt_groupings = true;
    slow.push_back(service.submit(std::move(heavy)));
  }
  Request quick = check_request("quick", "builtin:fig3");
  quick.deadline_ms = 1;
  std::future<Response> expired = service.submit(std::move(quick));

  Response response = expired.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "deadline_exceeded");
  for (auto& future : slow) EXPECT_TRUE(future.get().ok);
  service.stop();
  EXPECT_EQ(service.metrics_snapshot()
                .find("serve.requests.deadline_exceeded")
                ->counter,
            1u);
}

TEST(ServiceTest, MalformedSpecsAreStructuredErrors) {
  Service service;
  Request truncated;
  truncated.op = RequestOp::kCheck;
  truncated.spec_text = "system t;\nprocess P {";
  Response response = service.execute(truncated);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "invalid_argument");
  EXPECT_NE(response.error.message.find("line"), std::string::npos);

  Request garbage;
  garbage.op = RequestOp::kSynth;
  garbage.spec_text = "\x7f\x03not a spec at all";
  Response garbage_response = service.execute(garbage);
  EXPECT_FALSE(garbage_response.ok);

  Request missing;
  missing.op = RequestOp::kSynth;
  missing.target = "/no/such/spec.ifs";
  EXPECT_EQ(service.execute(missing).error.code, "not_found");
}

TEST(ServiceTest, RequestParsingRejectsUnknownFieldsAndOps) {
  for (const char* bad : {
           R"({"op": "transmogrify", "spec": "builtin:fig3"})",
           R"({"op": "synth"})",
           R"({"op": "synth", "spec": "a", "spec_text": "b"})",
           R"({"op": "synth", "spec": "a", "bogus": 1})",
           R"({"op": "synth", "spec": "a", "options": {"threads": 1.5}})",
           R"({"spec": "builtin:fig3"})",
       }) {
    Result<Json> json = parse_json(bad);
    ASSERT_TRUE(json.is_ok()) << bad;
    EXPECT_FALSE(parse_request(*json).is_ok()) << bad;
  }
}

TEST(ServiceTest, SubmitWithoutStartIsRejectedNotHung) {
  Service service;
  Response response =
      service.submit(check_request("x", "builtin:fig3")).get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "admission_rejected");
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ServiceTest, TracingOnOrOffNeverChangesAReportByte) {
  // Reference: no tracing at all.
  std::string reference;
  {
    Service service;
    reference = service.execute(explore_request("r", "builtin:fig3")).report;
    ASSERT_FALSE(reference.empty());
  }

  // Full observability on: service-wide trace, event log, watchdog.
  obs::TraceSink trace;
  obs::EventLog event_log;
  ServiceOptions options;
  options.workers = 2;
  options.trace = &trace;
  options.event_log = &event_log;
  options.watchdog_poll_ms = 1;
  Service service(options);
  service.start();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(
        explore_request("e" + std::to_string(i), "builtin:fig3")));
    futures.push_back(service.submit(
        check_request("c" + std::to_string(i), "builtin:fig3")));
  }
  for (auto& future : futures) {
    Response response = future.get();
    ASSERT_TRUE(response.ok) << response.error.message;
    EXPECT_FALSE(response.trace_id.empty());
    if (response.op == "explore") {
      EXPECT_EQ(response.report, reference);
    }
  }
  service.stop();

  // The service-wide trace is one schema-valid document: every flow
  // start has its finish, every async request span is balanced (that is
  // what "every request flow-linked across threads" means to the
  // validator), and engine phase spans landed in the same trace.
  const std::string json = trace.to_json();
  std::string error;
  EXPECT_TRUE(obs::validate_trace_json(json, &error)) << error;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), 8u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"b\""), 8u);
  EXPECT_NE(json.find("\"trace_id\": \"t1\""), std::string::npos);
  EXPECT_NE(json.find("execute explore"), std::string::npos);
  // Engine spans (the explore work queue drain) are in the service
  // trace, request-attributed, since no per-request trace_file diverted
  // them.
  EXPECT_NE(json.find("drain"), std::string::npos);

  // The event log saw the service lifecycle.
  EXPECT_NE(event_log.to_jsonl().find("service started"),
            std::string::npos);
  // The watchdog exported its liveness gauges at least once.
  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_NE(snap.find("serve.workers.busy"), nullptr);
  EXPECT_NE(snap.find("serve.inflight.oldest_age_us"), nullptr);
  EXPECT_NE(snap.find("serve.worker.0.inflight_age_us"), nullptr);
}

TEST(ServiceTest, PerRequestTraceFileTakesPrecedenceOverServiceSink) {
  obs::TraceSink trace;
  ServiceOptions options;
  options.trace = &trace;
  Service service(options);
  service.start();
  Request request = explore_request("e", "builtin:fig3");
  const std::string path = ::testing::TempDir() + "service_test_trace.json";
  request.trace_file = path;
  Response response = service.submit(std::move(request)).get();
  ASSERT_TRUE(response.ok) << response.error.message;
  service.stop();

  std::ifstream in(path);
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::validate_trace_json(file_contents.str(), &error)) << error;
  // Engine spans went to the private file, not the service sink...
  EXPECT_NE(file_contents.str().find("drain"), std::string::npos);
  const std::string service_json = trace.to_json();
  EXPECT_EQ(service_json.find("drain"), std::string::npos);
  // ...while the lifecycle (flow-linked submit/execute) stayed in the
  // service-wide trace, so the request is still visible there.
  EXPECT_NE(service_json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(service_json.find("execute explore"), std::string::npos);
  EXPECT_TRUE(obs::validate_trace_json(service_json, &error)) << error;
  std::remove(path.c_str());
}

TEST(ServiceTest, UnwritableTraceFileIsAStructuredError) {
  Service service;
  Request request = check_request("c", "builtin:fig3");
  request.trace_file = "/nonexistent-dir/trace.json";
  Response response = service.execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, "trace_unwritable");
  EXPECT_NE(response.error.message.find("/nonexistent-dir/trace.json"),
            std::string::npos);
}

TEST(ServiceTest, StatsOpAnswersOverTheWireFormat) {
  Service service;
  Request stats;
  stats.id = "s";
  stats.op = RequestOp::kStats;
  Response response = service.execute(stats);
  ASSERT_TRUE(response.ok) << response.error.message;
  EXPECT_FALSE(response.trace_id.empty());
  Result<Json> parsed = parse_json(response.report);
  ASSERT_TRUE(parsed.is_ok()) << response.report;
  const JsonObject& root = parsed->as_object();
  EXPECT_TRUE(root.count("queue_depth"));
  EXPECT_TRUE(root.count("workers"));
  EXPECT_TRUE(root.count("inflight"));
  EXPECT_TRUE(root.count("counters"));
  ASSERT_TRUE(root.count("program_cache"));
  const JsonObject& pc = root.at("program_cache").as_object();
  EXPECT_TRUE(pc.count("size"));
  EXPECT_TRUE(pc.count("hits"));
  EXPECT_TRUE(pc.count("misses"));
  // The live IFSYN_SIM_OPT level (0 or 1) new compiles run at.
  ASSERT_TRUE(pc.count("opt_level"));
  const double level = pc.at("opt_level").as_number();
  EXPECT_TRUE(level == 0.0 || level == 1.0) << level;

  // The stats op is parseable from the wire like any other request.
  Result<Json> wire = parse_json(R"({"id": "r5", "op": "stats"})");
  ASSERT_TRUE(wire.is_ok());
  Result<Request> request = parse_request(*wire);
  ASSERT_TRUE(request.is_ok()) << request.status().to_string();
  EXPECT_EQ(request->op, RequestOp::kStats);
}

TEST(ServiceTest, StatsAndMetricsReportTheActiveSimEngine) {
  // The active engine rides alongside opt_level everywhere it already
  // appears: /stats JSON (by name), the native artifact-cache block, and
  // the prometheus text (serve.sim_engine gauge: 0=vm, 1=ast, 2=native).
  for (const char* engine : {"vm", "native"}) {
    ::setenv("IFSYN_SIM_ENGINE", engine, 1);
    Service service;
    Request stats;
    stats.id = "s";
    stats.op = RequestOp::kStats;
    Response response = service.execute(stats);
    ::unsetenv("IFSYN_SIM_ENGINE");
    ASSERT_TRUE(response.ok) << response.error.message;
    Result<Json> parsed = parse_json(response.report);
    ASSERT_TRUE(parsed.is_ok()) << response.report;
    const JsonObject& root = parsed->as_object();
    ASSERT_TRUE(root.count("sim_engine"));
    EXPECT_EQ(root.at("sim_engine").as_string(), engine);
    ASSERT_TRUE(root.count("native_cache"));
    const JsonObject& nc = root.at("native_cache").as_object();
    EXPECT_TRUE(nc.count("hits"));
    EXPECT_TRUE(nc.count("misses"));
    EXPECT_TRUE(nc.count("compiles"));

    Request metrics;
    metrics.id = "m";
    metrics.op = RequestOp::kMetrics;
    ::setenv("IFSYN_SIM_ENGINE", engine, 1);
    Response text = service.execute(metrics);
    ::unsetenv("IFSYN_SIM_ENGINE");
    ASSERT_TRUE(text.ok) << text.error.message;
    const std::string needle =
        std::string("serve_sim_engine ") +
        (std::string(engine) == "native" ? "2" : "0");
    EXPECT_NE(text.report.find(needle), std::string::npos)
        << engine << " gauge missing from:\n"
        << text.report;
  }
}

TEST(ServiceTest, SlowRequestsAreCapturedToTraceDir) {
  const std::string dir = ::testing::TempDir() + "service_test_slow";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServiceOptions options;
  options.workers = 1;
  options.slow_trace_ms = 1;  // full flc sweeps take well over 1 ms
  options.slow_trace_keep = 2;
  options.slow_trace_dir = dir;
  Service service(options);
  service.start();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    Request heavy = explore_request("slow" + std::to_string(i),
                                    "builtin:flc", /*top_k=*/0);
    heavy.options.protocols = {spec::ProtocolKind::kFullHandshake,
                               spec::ProtocolKind::kHalfHandshake,
                               spec::ProtocolKind::kFixedDelay};
    heavy.options.alt_groupings = true;
    futures.push_back(service.submit(std::move(heavy)));
  }
  for (auto& future : futures) ASSERT_TRUE(future.get().ok);
  service.stop();

  // Capped at slow_trace_keep captures, each a schema-valid trace with
  // the request's engine spans (no service-wide sink was configured).
  std::vector<std::string> captures;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    captures.push_back(entry.path().string());
  }
  ASSERT_FALSE(captures.empty());
  EXPECT_LE(captures.size(), 2u);
  for (const std::string& path : captures) {
    EXPECT_NE(path.find("slow-t"), std::string::npos);
    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    std::string error;
    EXPECT_TRUE(obs::validate_trace_json(contents.str(), &error))
        << path << ": " << error;
    EXPECT_NE(contents.str().find("drain"), std::string::npos) << path;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ifsyn::serve
