#include "serve/spec_intern.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ifsyn::serve {
namespace {

const char* kMinimalSpec =
    "system t;\n"
    "variable X : bits(8);\n"
    "process P { wait 1; X := 3; }\n"
    "module A { process P; }\n"
    "module B { variable X; }\n"
    "bus Z { channels all; }\n";

TEST(ContentHashTest, DistinguishesContentAndLength) {
  EXPECT_EQ(content_hash("abc"), content_hash("abc"));
  EXPECT_NE(content_hash("abc"), content_hash("abd"));
  EXPECT_NE(content_hash("abc"), content_hash("abc "));
  // 128-bit hex + "-" + length.
  EXPECT_EQ(content_hash("abc").substr(32), "-3");
}

TEST(SpecInternTest, InternsSourceOncePerContent) {
  SpecInterner interner;
  Result<InternedSpec> a = interner.intern_source(kMinimalSpec);
  Result<InternedSpec> b = interner.intern_source(kMinimalSpec);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->hash, b->hash);
  EXPECT_EQ(a->system.get(), b->system.get());  // shared, not re-parsed
  EXPECT_EQ(interner.size(), 1u);
}

TEST(SpecInternTest, FileTargetHashesContentAndPrefixesErrors) {
  const std::string path = testing::TempDir() + "/intern_spec_test.ifs";
  {
    std::ofstream out(path);
    out << kMinimalSpec;
  }
  SpecInterner interner;
  Result<InternedSpec> from_file = interner.intern_target(path);
  ASSERT_TRUE(from_file.is_ok()) << from_file.status();
  // Same content inline -> same interned entry.
  Result<InternedSpec> inline_spec = interner.intern_source(kMinimalSpec);
  ASSERT_TRUE(inline_spec.is_ok());
  EXPECT_EQ(from_file->hash, inline_spec->hash);
  EXPECT_EQ(from_file->system.get(), inline_spec->system.get());

  {
    std::ofstream out(path);
    out << "system broken;\nprocess P {";
  }
  Result<InternedSpec> broken = interner.intern_target(path);
  ASSERT_FALSE(broken.is_ok());
  // Diagnostics name the file (satellite: hardened ingestion).
  EXPECT_NE(broken.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(SpecInternTest, MissingFileIsNotFound) {
  SpecInterner interner;
  Result<InternedSpec> missing = interner.intern_target("/no/such/file.ifs");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SpecInternTest, BuiltinsCarryTheirDefaults) {
  SpecInterner interner;
  Result<InternedSpec> flc = interner.intern_target("builtin:flc");
  ASSERT_TRUE(flc.is_ok());
  EXPECT_FALSE(flc->defaults.arbitrate);
  EXPECT_EQ(flc->defaults.compute_cycles_override.size(), 2u);

  Result<InternedSpec> am = interner.intern_target("builtin:am");
  ASSERT_TRUE(am.is_ok());
  EXPECT_TRUE(am->defaults.arbitrate);

  Result<InternedSpec> again = interner.intern_target("builtin:flc");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->system.get(), flc->system.get());  // cached

  Result<InternedSpec> unknown = interner.intern_target("builtin:nope");
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpecInternTest, TinyCapacityEvictsLeastRecentlyUsed) {
  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter("h");
  obs::Counter& misses = registry.counter("m");
  obs::Counter& evictions = registry.counter("e");
  SpecInterner interner(/*capacity=*/2, &hits, &misses, &evictions);

  ASSERT_TRUE(interner.intern_target("builtin:fig3").is_ok());
  ASSERT_TRUE(interner.intern_target("builtin:am").is_ok());
  EXPECT_EQ(interner.size(), 2u);
  // Touch fig3 so am is the LRU victim.
  ASSERT_TRUE(interner.intern_target("builtin:fig3").is_ok());
  ASSERT_TRUE(interner.intern_target("builtin:ethernet").is_ok());
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(evictions.value(), 1u);
  // fig3 survived; am was evicted and re-interns as a miss.
  const std::uint64_t misses_before = misses.value();
  ASSERT_TRUE(interner.intern_target("builtin:fig3").is_ok());
  EXPECT_EQ(misses.value(), misses_before);
  ASSERT_TRUE(interner.intern_target("builtin:am").is_ok());
  EXPECT_EQ(misses.value(), misses_before + 1);
}

TEST(SpecInternTest, ParseErrorsKeepLineInformation) {
  SpecInterner interner;
  Result<InternedSpec> bad =
      interner.intern_source("system t;\nprocess P { wait; }\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().message();
}

}  // namespace
}  // namespace ifsyn::serve
