#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ifsyn::serve {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_EQ(parse_json("42")->as_number(), 42);
  EXPECT_EQ(parse_json("-3.5")->as_number(), -3.5);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  Result<Json> json =
      parse_json(R"({"op": "synth", "n": [1, 2, 3], "o": {"k": true}})");
  ASSERT_TRUE(json.is_ok());
  EXPECT_EQ(json->find("op")->as_string(), "synth");
  EXPECT_EQ(json->find("n")->as_array().size(), 3u);
  EXPECT_TRUE(json->find("o")->find("k")->as_bool());
  EXPECT_EQ(json->find("missing"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  Result<Json> json = parse_json(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(json.is_ok());
  EXPECT_EQ(json->as_string(), "a\"b\\c\ndA");
}

TEST(JsonTest, DumpRoundTripsAndIsDeterministic) {
  const std::string text =
      R"({"id":"r1","n":7,"nested":{"a":[1,true,null],"b":"x\ny"}})";
  Result<Json> json = parse_json(text);
  ASSERT_TRUE(json.is_ok());
  const std::string once = json->dump();
  // Members serialize in sorted key order regardless of input order.
  Result<Json> reordered =
      parse_json(R"({"nested":{"b":"x\ny","a":[1,true,null]},"n":7,"id":"r1"})");
  ASSERT_TRUE(reordered.is_ok());
  EXPECT_EQ(once, reordered->dump());
  EXPECT_EQ(once, parse_json(once)->dump());
}

TEST(JsonTest, IntegersDumpWithoutDecimalPoint) {
  JsonObject object;
  object["us"] = std::uint64_t{1234567};
  EXPECT_EQ(Json(std::move(object)).dump(), "{\"us\":1234567}");
}

// ---- hardened-ingestion negatives: garbage must be a structured error,
// never a crash or an accepted value -----------------------------------

TEST(JsonTest, RejectsGarbage) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\"}", "{\"a\":}", "\"unterminated",
        "{\"a\":1,}", "nul", "tru", "+5", "1.2.3", "{\"a\":1}trailing",
        "[1 2]", "\"\x01\""}) {
    Result<Json> json = parse_json(bad);
    EXPECT_FALSE(json.is_ok()) << "accepted: " << bad;
    EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument);
    // Diagnostics carry a byte offset.
    EXPECT_NE(json.status().message().find("offset"), std::string::npos);
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  Result<Json> json = parse_json(deep);
  ASSERT_FALSE(json.is_ok());
  EXPECT_NE(json.status().message().find("nesting"), std::string::npos);
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

}  // namespace
}  // namespace ifsyn::serve
