// Rate model: Eq. 2 bus rates, words-per-message, peak rates -- the
// arithmetic Fig. 8's numbers come from.
#include "estimate/rate_model.hpp"

#include <gtest/gtest.h>

namespace ifsyn::estimate {
namespace {

using spec::ProtocolKind;

spec::Channel flc_channel() {
  // ch1/ch2 of the FLC: 16 data + 7 address bits.
  spec::Channel ch;
  ch.name = "ch2";
  ch.data_bits = 16;
  ch.addr_bits = 7;
  ch.accesses = 128;
  return ch;
}

TEST(RateModelTest, ProtocolTimings) {
  EXPECT_EQ(protocol_timing(ProtocolKind::kFullHandshake, 2).cycles_per_word, 2);
  EXPECT_EQ(protocol_timing(ProtocolKind::kFullHandshake, 2).control_lines, 2);
  EXPECT_EQ(protocol_timing(ProtocolKind::kHalfHandshake, 2).cycles_per_word, 1);
  EXPECT_EQ(protocol_timing(ProtocolKind::kHalfHandshake, 2).control_lines, 1);
  EXPECT_EQ(protocol_timing(ProtocolKind::kFixedDelay, 5).cycles_per_word, 5);
  EXPECT_FALSE(protocol_timing(ProtocolKind::kHardwiredPort, 2).shared_bus);
}

TEST(RateModelTest, WordsPerMessageIsCeil) {
  EXPECT_EQ(words_per_message(16, 8), 2);   // Fig. 4: two 8-bit transfers
  EXPECT_EQ(words_per_message(23, 8), 3);
  EXPECT_EQ(words_per_message(23, 23), 1);
  EXPECT_EQ(words_per_message(23, 24), 1);
  EXPECT_EQ(words_per_message(1, 8), 1);
  EXPECT_EQ(words_per_message(23, 1), 23);
}

TEST(RateModelTest, BusRateEq2) {
  // BusRate = width / 2 for the full handshake (Eq. 2 in bits/clock).
  EXPECT_DOUBLE_EQ(bus_rate(8, ProtocolKind::kFullHandshake, 2), 4.0);
  EXPECT_DOUBLE_EQ(bus_rate(20, ProtocolKind::kFullHandshake, 2), 10.0);
  EXPECT_DOUBLE_EQ(bus_rate(18, ProtocolKind::kFullHandshake, 2), 9.0);
  EXPECT_DOUBLE_EQ(bus_rate(16, ProtocolKind::kFullHandshake, 2), 8.0);
  // The half handshake moves a word per clock.
  EXPECT_DOUBLE_EQ(bus_rate(8, ProtocolKind::kHalfHandshake, 2), 8.0);
}

TEST(RateModelTest, PeakRateCapsAtMessageSize) {
  spec::Channel ch = flc_channel();
  // Fig. 8 design A: peak(ch2) at width 20 is 10 bits/clock.
  EXPECT_DOUBLE_EQ(peak_rate(ch, 20, ProtocolKind::kFullHandshake, 2), 10.0);
  EXPECT_DOUBLE_EQ(peak_rate(ch, 16, ProtocolKind::kFullHandshake, 2), 8.0);
  // Beyond the message size, extra width buys nothing.
  EXPECT_DOUBLE_EQ(peak_rate(ch, 23, ProtocolKind::kFullHandshake, 2), 11.5);
  EXPECT_DOUBLE_EQ(peak_rate(ch, 64, ProtocolKind::kFullHandshake, 2), 11.5);
}

TEST(RateModelTest, MessageTransferCycles) {
  spec::Channel ch = flc_channel();
  // ceil(23/w) * 2 cycles.
  EXPECT_EQ(message_transfer_cycles(ch, 1, ProtocolKind::kFullHandshake, 2), 46);
  EXPECT_EQ(message_transfer_cycles(ch, 4, ProtocolKind::kFullHandshake, 2), 12);
  EXPECT_EQ(message_transfer_cycles(ch, 8, ProtocolKind::kFullHandshake, 2), 6);
  EXPECT_EQ(message_transfer_cycles(ch, 23, ProtocolKind::kFullHandshake, 2), 2);
  EXPECT_EQ(message_transfer_cycles(ch, 32, ProtocolKind::kFullHandshake, 2), 2);
  EXPECT_EQ(message_transfer_cycles(ch, 23, ProtocolKind::kHalfHandshake, 2), 1);
  EXPECT_EQ(message_transfer_cycles(ch, 23, ProtocolKind::kFixedDelay, 2), 2);
}

TEST(RateModelTest, InvalidInputsAssert) {
  EXPECT_THROW(words_per_message(0, 8), InternalError);
  EXPECT_THROW(words_per_message(8, 0), InternalError);
  EXPECT_THROW(protocol_timing(ProtocolKind::kFixedDelay, 0), InternalError);
}

/// Property: bus rate is monotone in width, and transfer cycles are
/// non-increasing in width with a plateau once width >= message bits --
/// the Fig. 7 shape at the model level.
class WidthMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(WidthMonotonicity, TransferCyclesMonotoneThenFlat) {
  spec::Channel ch = flc_channel();
  ch.data_bits = GetParam();
  ch.addr_bits = 7;
  long long prev = message_transfer_cycles(ch, 1, ProtocolKind::kFullHandshake, 2);
  for (int w = 2; w <= 40; ++w) {
    const long long cur =
        message_transfer_cycles(ch, w, ProtocolKind::kFullHandshake, 2);
    EXPECT_LE(cur, prev) << "width " << w;
    if (w >= ch.message_bits()) {
      EXPECT_EQ(cur, 2) << "width " << w;  // single word, 2 cycles
    }
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(DataBits, WidthMonotonicity,
                         ::testing::Values(1, 8, 16, 24));

}  // namespace
}  // namespace ifsyn::estimate
