// Performance estimator: execution-time model, average rates, the FLC
// calibration anchors from the paper's Sec. 5.
#include "estimate/performance_estimator.hpp"

#include <gtest/gtest.h>

#include "spec/analysis.hpp"
#include "suite/flc.hpp"

namespace ifsyn::estimate {
namespace {

using spec::ProtocolKind;
using suite::FlcCalibration;

/// FLC kernel with access counts annotated and calibration applied.
struct FlcFixture {
  spec::System system;
  PerformanceEstimator estimator;

  FlcFixture() : system(suite::make_flc_kernel()), estimator(system) {
    EXPECT_TRUE(spec::annotate_channel_accesses(system).is_ok());
    estimator.set_compute_cycles("EVAL_R3",
                                 FlcCalibration::kEvalR3ComputeCycles);
    estimator.set_compute_cycles("CONV_R2",
                                 FlcCalibration::kConvR2ComputeCycles);
  }
};

TEST(EstimatorTest, FlcChannelsHave128AccessesAnd23MessageBits) {
  FlcFixture f;
  const spec::Channel* ch1 = f.system.find_channel("ch1");
  const spec::Channel* ch2 = f.system.find_channel("ch2");
  ASSERT_NE(ch1, nullptr);
  ASSERT_NE(ch2, nullptr);
  EXPECT_EQ(ch1->accesses, 128);
  EXPECT_EQ(ch2->accesses, 128);
  EXPECT_EQ(ch1->message_bits(), FlcCalibration::kMessageBits);
  EXPECT_EQ(ch2->message_bits(), FlcCalibration::kMessageBits);
  EXPECT_EQ(ch1->dir, spec::ChannelDir::kWrite);
  EXPECT_EQ(ch2->dir, spec::ChannelDir::kRead);
}

TEST(EstimatorTest, ExecutionTimeFormula) {
  FlcFixture f;
  // T(w) = compute + 128 * ceil(23/w) * 2.
  EXPECT_EQ(f.estimator.execution_time("CONV_R2", 8,
                                       ProtocolKind::kFullHandshake, 2),
            512 + 128 * 3 * 2);
  EXPECT_EQ(f.estimator.execution_time("EVAL_R3", 23,
                                       ProtocolKind::kFullHandshake, 2),
            768 + 128 * 2);
}

TEST(EstimatorTest, PaperAnchorConvR2CrossestwoThousandAtWidth4to5) {
  // "if process CONV_R2 has a maximum execution time constraint of 2000
  // clocks, then only buswidths greater than 4 bits will be considered."
  FlcFixture f;
  EXPECT_GT(f.estimator.execution_time("CONV_R2", 4,
                                       ProtocolKind::kFullHandshake, 2),
            FlcCalibration::kConvR2MaxClocks);
  EXPECT_LE(f.estimator.execution_time("CONV_R2", 5,
                                       ProtocolKind::kFullHandshake, 2),
            FlcCalibration::kConvR2MaxClocks);
}

TEST(EstimatorTest, ExecutionTimeMonotoneNonIncreasingInWidth) {
  FlcFixture f;
  for (const char* proc : {"EVAL_R3", "CONV_R2"}) {
    long long prev =
        f.estimator.execution_time(proc, 1, ProtocolKind::kFullHandshake, 2);
    for (int w = 2; w <= 32; ++w) {
      const long long cur =
          f.estimator.execution_time(proc, w, ProtocolKind::kFullHandshake, 2);
      EXPECT_LE(cur, prev) << proc << " at width " << w;
      prev = cur;
    }
  }
}

TEST(EstimatorTest, NoImprovementBeyondMessageBits) {
  // "bus widths greater than 23 pins do not yield any further
  // improvements in the performance."
  FlcFixture f;
  const long long at23 =
      f.estimator.execution_time("EVAL_R3", 23, ProtocolKind::kFullHandshake, 2);
  for (int w = 24; w <= 64; ++w) {
    EXPECT_EQ(f.estimator.execution_time("EVAL_R3", w,
                                         ProtocolKind::kFullHandshake, 2),
              at23);
  }
}

TEST(EstimatorTest, AverageRateIsBitsOverTime) {
  FlcFixture f;
  const spec::Channel* ch2 = f.system.find_channel("ch2");
  const long long t =
      f.estimator.execution_time("CONV_R2", 8, ProtocolKind::kFullHandshake, 2);
  const double expected = 128.0 * 23 / static_cast<double>(t);
  EXPECT_DOUBLE_EQ(
      f.estimator.average_rate(*ch2, 8, ProtocolKind::kFullHandshake, 2),
      expected);
}

TEST(EstimatorTest, AverageRateIncreasesWithWidthUpToMessageSize) {
  FlcFixture f;
  const spec::Channel* ch1 = f.system.find_channel("ch1");
  double prev = f.estimator.average_rate(*ch1, 1, ProtocolKind::kFullHandshake, 2);
  for (int w = 2; w <= 23; ++w) {
    const double cur =
        f.estimator.average_rate(*ch1, w, ProtocolKind::kFullHandshake, 2);
    EXPECT_GE(cur, prev) << "width " << w;
    prev = cur;
  }
}

TEST(EstimatorTest, ChannelRatesCoverWholeBus) {
  FlcFixture f;
  const spec::BusGroup* bus = f.system.find_bus("B");
  ASSERT_NE(bus, nullptr);
  auto rates = f.estimator.channel_rates(*bus, 20,
                                         ProtocolKind::kFullHandshake, 2);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].channel, "ch1");
  EXPECT_EQ(rates[1].channel, "ch2");
  // Fig. 8 design A: peak of ch2 at width 20 is 10 bits/clock.
  EXPECT_DOUBLE_EQ(rates[1].peak, 10.0);
  EXPECT_GT(rates[0].average, 0.0);
}

TEST(EstimatorTest, DefaultComputeDerivedFromBody) {
  spec::System system = suite::make_flc_kernel();
  ASSERT_TRUE(spec::annotate_channel_accesses(system).is_ok());
  PerformanceEstimator estimator(system);  // no overrides
  // Body-derived compute for EVAL_R3 includes its 768 wait cycles plus
  // per-iteration operation costs.
  EXPECT_GE(estimator.compute_cycles("EVAL_R3"), 768);
  // The override pins it exactly.
  estimator.set_compute_cycles("EVAL_R3", 768);
  EXPECT_EQ(estimator.compute_cycles("EVAL_R3"), 768);
}

TEST(EstimatorTest, ProtocolVariantsScaleCommunication) {
  FlcFixture f;
  // Half handshake: 1 cycle/word -> communication halves vs full.
  const long long full =
      f.estimator.execution_time("CONV_R2", 8, ProtocolKind::kFullHandshake, 2);
  const long long half =
      f.estimator.execution_time("CONV_R2", 8, ProtocolKind::kHalfHandshake, 2);
  EXPECT_EQ(full - 512, 2 * (half - 512));
  // Fixed delay defaults to 2 cycles/word: same as the full handshake.
  const long long fixed =
      f.estimator.execution_time("CONV_R2", 8, ProtocolKind::kFixedDelay, 2);
  EXPECT_EQ(fixed, full);
  // Hardwired ports: message-wide words, one word per access.
  const long long wired = f.estimator.execution_time(
      "CONV_R2", 23, ProtocolKind::kHardwiredPort, 2);
  EXPECT_EQ(wired, 512 + 128 * 2);
}

TEST(EstimatorTest, BitsPerActivation) {
  spec::Channel ch;
  ch.data_bits = 16;
  ch.addr_bits = 7;
  ch.accesses = 128;
  EXPECT_EQ(PerformanceEstimator::bits_per_activation(ch), 128 * 23);
}

}  // namespace
}  // namespace ifsyn::estimate
