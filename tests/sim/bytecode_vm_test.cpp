// Bytecode engine tests: the compiler's lowering (constant folding, wait
// sets, lazy traps, procedure specialization) and the VM's execution
// semantics, checked both directly and against the AST reference engine.
#include "sim/bytecode/vm.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/metrics.hpp"
#include "sim/bytecode/compiler.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim {
namespace {

using namespace spec;

SimulationRun run_body(std::vector<Variable> vars, Block body,
                       std::vector<Variable> locals = {},
                       Engine engine = Engine::kVm) {
  System system("t");
  for (auto& v : vars) system.add_variable(std::move(v));
  Process p;
  p.name = "main";
  p.locals = std::move(locals);
  p.body = std::move(body);
  system.add_process(std::move(p));
  return simulate(system, 1'000'000, false, {}, engine);
}

// ---- engine selection ------------------------------------------------------

TEST(EngineSelectionTest, EnvVariablePicksEngine) {
  ::unsetenv("IFSYN_SIM_ENGINE");
  EXPECT_EQ(engine_from_env(), Engine::kVm);
  ::setenv("IFSYN_SIM_ENGINE", "ast", 1);
  EXPECT_EQ(engine_from_env(), Engine::kAst);
  ::setenv("IFSYN_SIM_ENGINE", "vm", 1);
  EXPECT_EQ(engine_from_env(), Engine::kVm);
  ::unsetenv("IFSYN_SIM_ENGINE");
}

TEST(EngineSelectionTest, InterpreterReportsItsEngine) {
  System system("t");
  Kernel k1, k2;
  EXPECT_EQ(Interpreter(system, k1, Engine::kVm).engine(), Engine::kVm);
  EXPECT_EQ(Interpreter(system, k2, Engine::kAst).engine(), Engine::kAst);
}

// ---- compiler structure ----------------------------------------------------

TEST(BytecodeCompilerTest, FoldsConstantExpressions) {
  // (6*7+0) is compile-time constant: the body lowers to a single kConst
  // feeding the store, not a mul/add chain.
  System system("t");
  system.add_variable(Variable("X", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {assign("X", add(mul(lit(6), lit(7)), lit(0)))};
  system.add_process(std::move(p));

  Kernel kernel;
  const bytecode::CompiledSystem cs = bytecode::compile(system, kernel);
  ASSERT_EQ(cs.processes.size(), 1u);
  const bytecode::ProcProgram& prog = cs.processes[0];
  int consts = 0, binaries = 0;
  for (const auto& in : prog.code) {
    if (in.op == bytecode::Op::kConst) ++consts;
    if (in.op == bytecode::Op::kBinary) ++binaries;
  }
  EXPECT_EQ(consts, 1);
  EXPECT_EQ(binaries, 0);
  ASSERT_EQ(prog.consts.size(), 1u);
  EXPECT_EQ(prog.consts[0].to_int(), 42);
}

TEST(BytecodeCompilerTest, NeverFoldsDivisionByZero) {
  // 1/0 must stay a runtime error (lazy, only when executed) — folding it
  // would turn a dead-branch bug into a compile failure.
  System system("t");
  system.add_variable(Variable("X", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {if_stmt(eq(lit(1), lit(2)),
                    {assign("X", spec::div(lit(1), lit(0)))})};
  system.add_process(std::move(p));

  Kernel kernel;
  const bytecode::CompiledSystem cs = bytecode::compile(system, kernel);
  int binaries = 0;
  for (const auto& in : cs.processes[0].code) {
    if (in.op == bytecode::Op::kBinary) ++binaries;
  }
  EXPECT_EQ(binaries, 1) << "div-by-zero must remain as runtime code";

  // And the guarded branch never executes, so the run succeeds.
  auto run = run_body({Variable("X", Type::integer(32))},
                      {if_stmt(eq(lit(1), lit(2)),
                               {assign("X", spec::div(lit(1), lit(0)))})});
  EXPECT_TRUE(run.result.status.is_ok());
}

TEST(BytecodeCompilerTest, UndeclaredVariableLowersToLazyTrap) {
  // Same lazy timing as the AST engine: compiling succeeds, running the
  // statement throws with the reference engine's message.
  auto ok = run_body({Variable("X", Type::integer(32))},
                     {if_stmt(eq(lit(1), lit(2)), {assign("X", var("NOPE"))})});
  EXPECT_TRUE(ok.result.status.is_ok());

  auto run = run_body({Variable("X", Type::integer(32))},
                      {assign("X", var("NOPE"))});
  EXPECT_FALSE(run.result.status.is_ok());
  EXPECT_NE(run.result.status.message().find(
                "reference to undeclared variable 'NOPE'"),
            std::string::npos)
      << run.result.status;
}

TEST(BytecodeCompilerTest, PrecomputesWaitSets) {
  System system("t");
  Signal sig;
  sig.name = "B";
  sig.fields = {{"START", 1}, {"DATA", 8}};
  system.add_signal(std::move(sig));
  Process p;
  p.name = "main";
  p.body = {wait_on({{"B", "START"}})};
  system.add_process(std::move(p));

  Kernel kernel;
  for (const auto& s : system.signals()) {
    for (const auto& f : s->fields) {
      kernel.add_signal_field(FieldKey{s->name, f.name}, BitVector(f.width));
    }
  }
  const bytecode::CompiledSystem cs = bytecode::compile(system, kernel);
  ASSERT_EQ(cs.processes[0].wait_sets.size(), 1u);
  ASSERT_EQ(cs.processes[0].wait_sets[0].size(), 1u);
  EXPECT_EQ(cs.processes[0].wait_sets[0][0],
            kernel.signal_id(FieldKey{"B", "START"}));
}

TEST(BytecodeCompilerTest, SpecializesProceduresPerProcess) {
  // INC resolves its free name "BASE" against each calling process's
  // locals, so each process's program carries its own specialized copy.
  System system("t");
  system.add_variable(Variable("R0", Type::integer(32)));
  system.add_variable(Variable("R1", Type::integer(32)));
  Procedure inc;
  inc.name = "INC";
  inc.params = {{"OUT_V", ParamDir::kOut, Type::integer(32)}};
  inc.body = {assign("OUT_V", add(var("BASE"), lit(1)))};
  system.add_procedure(std::move(inc));
  for (int i = 0; i < 2; ++i) {
    Process p;
    p.name = "P" + std::to_string(i);
    p.locals.emplace_back("BASE", Type::integer(32),
                          Value::integer(10 * (i + 1)));
    p.body = {call("INC", {lv("R" + std::to_string(i))})};
    system.add_process(std::move(p));
  }

  Kernel kernel;
  Interpreter interp(system, kernel, Engine::kVm);
  ASSERT_TRUE(interp.setup().is_ok());
  auto result = kernel.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status;
  EXPECT_EQ(interp.value_of("R0").get().to_int(), 11);
  EXPECT_EQ(interp.value_of("R1").get().to_int(), 21);
}

// ---- execution semantics on both engines -----------------------------------

class BothEngines : public ::testing::TestWithParam<Engine> {};
INSTANTIATE_TEST_SUITE_P(Engines, BothEngines,
                         ::testing::Values(Engine::kVm, Engine::kAst));

TEST_P(BothEngines, ForLoopShadowsAndRestoresLocal) {
  auto run = run_body(
      {Variable("OUT", Type::integer(32)),
       Variable("SUM", Type::integer(32))},
      {for_stmt("J", lit(1), lit(4),
                {assign("SUM", add(var("SUM"), var("J")))}),
       assign("OUT", var("J"))},
      {Variable("J", Type::integer(32), Value::integer(99))}, GetParam());
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("SUM").get().to_int(), 10);
  EXPECT_EQ(run.interpreter->value_of("OUT").get().to_int(), 99);
}

TEST_P(BothEngines, NestedLoopsOverSameNameRestoreOuter) {
  auto run = run_body(
      {Variable("TRACE", Type::integer(32))},
      {for_stmt("I", lit(1), lit(2),
                {for_stmt("I", lit(10), lit(11), {}),
                 assign("TRACE",
                        add(mul(var("TRACE"), lit(10)), var("I")))})},
      {}, GetParam());
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  // Each outer iteration sees its own I after the inner loop: 1 then 2.
  EXPECT_EQ(run.interpreter->value_of("TRACE").get().to_int(), 12);
}

TEST_P(BothEngines, ProcedureOutParamWritesArrayElement) {
  System system("t");
  system.add_variable(Variable("MEM", Type::array(Type::bits(16), 8)));
  Procedure mk;
  mk.name = "MK";
  mk.params = {{"IN_V", ParamDir::kIn, Type::bits(16)},
               {"OUT_V", ParamDir::kOut, Type::bits(16)}};
  mk.body = {assign("OUT_V", add(var("IN_V"), lit(5)))};
  system.add_procedure(std::move(mk));
  Process p;
  p.name = "main";
  p.body = {call("MK", {lit(100), lv_idx("MEM", lit(3))})};
  system.add_process(std::move(p));
  auto run = simulate(system, 1'000'000, false, {}, GetParam());
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("MEM").at(3).to_uint(), 105u);
}

TEST_P(BothEngines, RecursiveProcedureRuns) {
  // FACT(n) via an explicit depth counter — exercises the VM's frame
  // stack (and the compiler's worklist handling of self-referencing
  // procedures).
  System system("t");
  system.add_variable(Variable("R", Type::integer(32)));
  Procedure fact;
  fact.name = "FACT";
  fact.params = {{"N", ParamDir::kIn, Type::integer(32)},
                 {"OUT_R", ParamDir::kOut, Type::integer(32)}};
  fact.locals.emplace_back("SUB", Type::integer(32));
  fact.body = {if_stmt(le(var("N"), lit(1)), {assign("OUT_R", lit(1))},
                       {call("FACT", {sub(var("N"), lit(1)), lv("SUB")}),
                        assign("OUT_R", mul(var("N"), var("SUB")))})};
  system.add_procedure(std::move(fact));
  Process p;
  p.name = "main";
  p.body = {call("FACT", {lit(5), lv("R")})};
  system.add_process(std::move(p));
  auto run = simulate(system, 1'000'000, false, {}, GetParam());
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("R").get().to_int(), 120);
}

TEST_P(BothEngines, SetValueInjectsStimuli) {
  System system("t");
  system.add_variable(Variable("X", Type::integer(32)));
  system.add_variable(Variable("Y", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {assign("Y", add(var("X"), lit(1)))};
  system.add_process(std::move(p));
  Kernel kernel;
  Interpreter interp(system, kernel, GetParam());
  ASSERT_TRUE(interp.setup().is_ok());
  interp.set_value("X", Value::integer(41));
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_EQ(interp.value_of("Y").get().to_int(), 42);
  EXPECT_THROW(interp.value_of("NOPE"), InternalError);
  EXPECT_THROW(interp.set_value("X", Value::integer(1, 16)), InternalError);
}

// ---- observability ---------------------------------------------------------

TEST(BytecodeVmTest, RecordsCompileAndExecutionMetrics) {
  System system("t");
  system.add_variable(Variable("S", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {for_stmt("I", lit(1), lit(100),
                     {assign("S", add(var("S"), var("I")))})};
  system.add_process(std::move(p));

  obs::MetricsRegistry metrics;
  auto run = simulate(system, 1'000'000, false,
                      obs::ObsContext{&metrics, nullptr}, Engine::kVm);
  ASSERT_TRUE(run.result.status.is_ok());
  const auto snap = metrics.snapshot();
  const auto* compiles = snap.find("sim.vm.compiles");
  ASSERT_NE(compiles, nullptr);
  EXPECT_EQ(compiles->counter, 1u);
  const auto* instrs = snap.find("sim.vm.compiled_instructions");
  ASSERT_NE(instrs, nullptr);
  EXPECT_GT(instrs->counter, 0u);
  const auto* ops = snap.find("sim.vm.executed_ops");
  ASSERT_NE(ops, nullptr);
  // 100 iterations x (compare + store + add + ...) — well above 500.
  EXPECT_GT(ops->counter, 500u);
  EXPECT_NE(snap.find("sim.vm.compile_us"), nullptr);
}

}  // namespace
}  // namespace ifsyn::sim
