// SimTask coroutine plumbing: lazy start, nesting with symmetric
// transfer, exception propagation, move semantics, destruction of
// suspended frames.
#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace ifsyn::sim {
namespace {

TEST(SimTaskTest, DefaultIsInvalidAndDone) {
  SimTask task;
  EXPECT_FALSE(task.valid());
  EXPECT_TRUE(task.done());
}

TEST(SimTaskTest, LazyStart) {
  bool ran = false;
  auto make = [&]() -> SimTask {
    ran = true;
    co_return;
  };
  SimTask task = make();
  EXPECT_TRUE(task.valid());
  EXPECT_FALSE(ran);  // initial_suspend is suspend_always
  EXPECT_FALSE(task.done());
  task.start();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(task.done());
}

TEST(SimTaskTest, NestedTasksRunInOrder) {
  std::vector<int> order;
  auto leaf = [&](int id) -> SimTask {
    order.push_back(id);
    co_return;
  };
  auto parent = [&]() -> SimTask {
    order.push_back(0);
    {
      SimTask child = leaf(1);
      co_await child;
    }
    order.push_back(2);
    {
      SimTask child = leaf(3);
      co_await child;
    }
    order.push_back(4);
  };
  SimTask task = parent();
  task.start();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimTaskTest, DeepNestingCompletes) {
  // Symmetric transfer must not blow the machine stack for deep chains.
  std::function<SimTask(int)> recurse = [&](int depth) -> SimTask {
    if (depth > 0) {
      SimTask child = recurse(depth - 1);
      co_await child;
    }
  };
  SimTask task = recurse(5000);
  task.start();
  EXPECT_TRUE(task.done());
}

TEST(SimTaskTest, ExceptionPropagatesThroughChain) {
  auto thrower = []() -> SimTask {
    co_await std::suspend_never{};
    throw InternalError("from the leaf");
  };
  auto middle = [&]() -> SimTask {
    SimTask child = thrower();
    co_await child;  // rethrows here
  };
  SimTask task = middle();
  task.start();
  ASSERT_TRUE(task.done());
  EXPECT_THROW(task.rethrow_if_failed(), InternalError);
}

TEST(SimTaskTest, MoveTransfersOwnership) {
  auto make = []() -> SimTask { co_return; };
  SimTask a = make();
  SimTask b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.start();
  EXPECT_TRUE(b.done());

  SimTask c = make();
  c = std::move(b);  // destroys c's original frame
  EXPECT_TRUE(c.done());
}

TEST(SimTaskTest, DestroyingSuspendedTaskRunsDestructors) {
  // A coroutine destroyed mid-suspension must destroy its in-scope
  // locals (here: a shared_ptr whose refcount we can observe).
  auto guard = std::make_shared<int>(42);
  std::coroutine_handle<> leaf_handle;

  struct ParkAwaiter {
    std::coroutine_handle<>* slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept { *slot = h; }
    void await_resume() const noexcept {}
  };

  auto parked = [&](std::shared_ptr<int> held) -> SimTask {
    ParkAwaiter awaiter{&leaf_handle};
    co_await awaiter;  // suspends holding `held` alive
    (void)*held;
  };

  {
    SimTask task = parked(guard);
    task.start();
    EXPECT_FALSE(task.done());
    EXPECT_EQ(guard.use_count(), 2);  // ours + the suspended frame's
  }                                    // task destroyed while suspended
  EXPECT_EQ(guard.use_count(), 1);
}

TEST(SimTaskTest, RethrowOnCleanTaskIsNoop) {
  auto make = []() -> SimTask { co_return; };
  SimTask task = make();
  task.start();
  EXPECT_NO_THROW(task.rethrow_if_failed());
}

}  // namespace
}  // namespace ifsyn::sim
