// The process-wide bytecode artifact store (sim/bytecode/program_cache):
// keying, compile-once sharing across Vms, LRU eviction, and the
// differential guarantee that a cached program simulates identically to
// a fresh compile.
#include "sim/bytecode/program_cache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/interpreter.hpp"
#include "suite/fig3_example.hpp"

namespace ifsyn::sim::bytecode {
namespace {

/// RAII guard: tests must never leak an installed cache into other tests.
struct ScopedProcessCache {
  explicit ScopedProcessCache(ProgramCache* cache) {
    install_process_cache(cache);
  }
  ~ScopedProcessCache() { install_process_cache(nullptr); }
};

TEST(SystemCacheKeyTest, StableForEqualContentSensitiveToChanges) {
  const spec::System a = suite::make_fig3_system();
  const spec::System b = suite::make_fig3_system();
  EXPECT_EQ(system_cache_key(a), system_cache_key(b));
  // A clone under another name prints differently -> different key.
  const spec::System renamed = a.clone("other_name");
  EXPECT_NE(system_cache_key(a), system_cache_key(renamed));
}

TEST(SystemCacheKeyTest, OptimizationLevelKeysSeparateArtifacts) {
  // A process serving mixed IFSYN_SIM_OPT requests must never hand an
  // optimized artifact to a reference run (or vice versa), so the level
  // is part of the key.
  const spec::System a = suite::make_fig3_system();
  EXPECT_NE(system_cache_key(a, OptLevel::kNone),
            system_cache_key(a, OptLevel::kFull));
  EXPECT_EQ(system_cache_key(a), system_cache_key(a, OptLevel::kNone))
      << "the default level is kNone";
  EXPECT_EQ(system_cache_key(a, OptLevel::kFull),
            system_cache_key(a, OptLevel::kFull));
}

TEST(ProgramCacheTest, CompilesOncePerKey) {
  ProgramCache cache;
  int compiles = 0;
  auto compile = [&] {
    ++compiles;
    return CompiledSystem{};
  };
  auto first = cache.get_or_compile("k", compile);
  bool was_hit = false;
  auto second = cache.get_or_compile("k", compile, &was_hit);
  EXPECT_EQ(compiles, 1);
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(first.get(), second.get());  // shared artifact
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ProgramCacheTest, CapacityOneEvictsTheColderKey) {
  ProgramCache cache(/*capacity=*/1);
  int compiles = 0;
  auto compile = [&] {
    ++compiles;
    return CompiledSystem{};
  };
  cache.get_or_compile("a", compile);
  cache.get_or_compile("b", compile);  // evicts a
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  cache.get_or_compile("a", compile);  // recompiles
  EXPECT_EQ(compiles, 3);
}

TEST(ProgramCacheTest, CachedProgramSimulatesIdentically) {
  const spec::System system = suite::make_fig3_system();

  // Fresh compile, no cache installed (the one-shot CLI path).
  const SimulationRun baseline = simulate(system, 1'000'000);
  ASSERT_TRUE(baseline.result.status.is_ok());

  ProgramCache cache;
  ScopedProcessCache installed(&cache);
  const SimulationRun cold = simulate(system, 1'000'000);
  const SimulationRun warm = simulate(system, 1'000'000);
  ASSERT_TRUE(cold.result.status.is_ok());
  ASSERT_TRUE(warm.result.status.is_ok());
  if (engine_from_env() == Engine::kVm) {
    // The AST reference engine never touches the program cache, so the
    // counter assertions only hold on the VM leg; the differential
    // check below is engine-independent.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_GE(cache.hits(), 1u);
  }

  // Same end time and per-process completion whether the program came
  // from a fresh compile, a cold cache, or a warm hit.
  for (const SimulationRun* run : {&cold, &warm}) {
    EXPECT_EQ(run->result.end_time, baseline.result.end_time);
    ASSERT_EQ(run->result.processes.size(),
              baseline.result.processes.size());
    for (std::size_t i = 0; i < baseline.result.processes.size(); ++i) {
      EXPECT_EQ(run->result.processes[i].completed,
                baseline.result.processes[i].completed);
      EXPECT_EQ(run->result.processes[i].finish_time,
                baseline.result.processes[i].finish_time);
    }
  }
  // Final variable state matches too.
  for (const auto& variable : system.variables()) {
    const spec::Value& expect =
        baseline.interpreter->value_of(variable->name);
    const spec::Value& cold_value =
        cold.interpreter->value_of(variable->name);
    for (int i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect.at(i), cold_value.at(i)) << variable->name;
    }
  }
}

}  // namespace
}  // namespace ifsyn::sim::bytecode
