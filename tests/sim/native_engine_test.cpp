// Native engine tests: the AOT C++ fast path must be observationally
// indistinguishable from the bytecode VM — same end time, same committed
// signal trace, same per-process statistics, same final variables — on
// the paper's builtin systems (original and refined forms), and must
// degrade to the VM cleanly (identical output, counted fallback,
// structured warning) whenever the toolchain is unavailable. Also covers
// the engine-selection env var's unknown-value warning and the artifact
// cache's memory/disk/LRU behavior through the process-wide seam.
//
// These tests invoke the host C++ compiler (small self-contained TUs,
// ~100ms each); the CI image bakes the toolchain in, so an engagement
// failure here is a real regression, not an environment quirk.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/interface_synthesizer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "sim/interpreter.hpp"
#include "sim/native/artifact_cache.hpp"
#include "sim/native/engine.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::sim {
namespace {

using spec::System;

/// Scoped setenv/unsetenv; restores the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_ = false;
  std::string saved_;
};

/// A per-test on-disk artifact dir, so compile/hit counts are not
/// polluted by artifacts earlier tests (or earlier runs) left behind.
std::string fresh_cache_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "ifsyn-native-test-" + tag +
                          "-" + std::to_string(::getpid());
  return dir;
}

SimulationRun run_engine(const System& system, Engine engine,
                         obs::MetricsRegistry* metrics = nullptr,
                         obs::EventLog* log = nullptr) {
  return simulate(system, 20'000'000, /*trace=*/true,
                  obs::ObsContext{metrics, nullptr, nullptr, log}, engine);
}

/// The four-way fuzz oracle's pairwise core, specialized to named runs:
/// status, end time, process stats, committed trace, final variables.
void expect_runs_identical(const System& system, const SimulationRun& lhs,
                           const char* lhs_name, const SimulationRun& rhs,
                           const char* rhs_name) {
  SCOPED_TRACE(::testing::Message() << lhs_name << " vs " << rhs_name);
  ASSERT_EQ(lhs.result.status.is_ok(), rhs.result.status.is_ok())
      << lhs_name << ": " << lhs.result.status << " " << rhs_name << ": "
      << rhs.result.status;
  if (!lhs.result.status.is_ok()) return;
  EXPECT_EQ(lhs.result.end_time, rhs.result.end_time);

  ASSERT_EQ(lhs.result.processes.size(), rhs.result.processes.size());
  for (std::size_t i = 0; i < lhs.result.processes.size(); ++i) {
    const ProcessStats& pl = lhs.result.processes[i];
    const ProcessStats& pr = rhs.result.processes[i];
    EXPECT_EQ(pl.name, pr.name);
    EXPECT_EQ(pl.completed, pr.completed) << pl.name;
    EXPECT_EQ(pl.finish_time, pr.finish_time) << pl.name;
    EXPECT_EQ(pl.activations, pr.activations) << pl.name;
    EXPECT_EQ(pl.bus_wait_cycles, pr.bus_wait_cycles) << pl.name;
  }

  const auto& tl = lhs.kernel->trace();
  const auto& tr = rhs.kernel->trace();
  ASSERT_EQ(tl.size(), tr.size());
  for (std::size_t i = 0; i < tl.size(); ++i) {
    EXPECT_TRUE(tl[i].time == tr[i].time && tl[i].delta == tr[i].delta &&
                tl[i].key == tr[i].key && tl[i].value == tr[i].value)
        << "trace entry " << i;
  }

  for (const auto& v : system.variables()) {
    EXPECT_EQ(lhs.interpreter->value_of(v->name),
              rhs.interpreter->value_of(v->name))
        << "variable " << v->name;
  }
}

/// The builtin systems the acceptance gate names, by constructor so each
/// test gets fresh copies.
std::vector<std::pair<std::string, std::function<System()>>> builtins() {
  return {
      {"fig3", [] { return suite::make_fig3_system(); }},
      {"flc_kernel", [] { return suite::make_flc_kernel(); }},
      {"flc_full", [] { return suite::make_flc_full(); }},
      {"am", [] { return suite::make_answering_machine(); }},
      {"ethernet", [] { return suite::make_ethernet_coprocessor(); }},
  };
}

core::SynthesisReport synthesize(System& system) {
  core::SynthesisOptions options;
  options.arbitrate = true;
  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> report = synth.run(system);
  EXPECT_TRUE(report.is_ok()) << report.status();
  return report.is_ok() ? *report : core::SynthesisReport{};
}

TEST(NativeEngineTest, EngagesAndMatchesVmOnBuiltinOriginals) {
  const std::string dir = fresh_cache_dir("builtins");
  ScopedEnv cache_dir("IFSYN_NATIVE_CACHE_DIR", dir.c_str());
  for (auto& [name, make] : builtins()) {
    SCOPED_TRACE(name);
    const System sys = make();
    obs::MetricsRegistry metrics;
    obs::EventLog log;
    SimulationRun native = run_engine(sys, Engine::kNative, &metrics, &log);
    // The builtins are the native subset's reason to exist: a fallback
    // here means an emission gate regressed. The log names the reason.
    ASSERT_NE(native.interpreter->native(), nullptr)
        << "native engine fell back on " << name << ":\n"
        << log.to_jsonl();
    EXPECT_EQ(native.interpreter->engine(), Engine::kNative);
    const auto snap = metrics.snapshot();
    const auto* engine_gauge = snap.find("sim.engine");
    ASSERT_NE(engine_gauge, nullptr);
    EXPECT_EQ(engine_gauge->gauge, 2);  // Engine::kNative
    EXPECT_EQ(snap.find("sim.native.fallbacks"), nullptr);

    SimulationRun vm = run_engine(sys, Engine::kVm);
    expect_runs_identical(sys, native, "native", vm, "vm");
  }
}

TEST(NativeEngineTest, DeterministicMetricsMatchVmOnBuiltins) {
  // Reports embed the deterministic metrics section verbatim, so report
  // byte-identity needs deterministic_json() equality — executed_ops and
  // compiled_instructions must charge identically in both engines.
  const std::string dir = fresh_cache_dir("detmetrics");
  ScopedEnv cache_dir("IFSYN_NATIVE_CACHE_DIR", dir.c_str());
  for (auto& [name, make] : builtins()) {
    SCOPED_TRACE(name);
    const System sys = make();
    obs::MetricsRegistry native_metrics;
    obs::MetricsRegistry vm_metrics;
    SimulationRun native = run_engine(sys, Engine::kNative, &native_metrics);
    ASSERT_NE(native.interpreter->native(), nullptr);
    SimulationRun vm = run_engine(sys, Engine::kVm, &vm_metrics);
    ASSERT_TRUE(vm.result.status.is_ok());
    EXPECT_EQ(native_metrics.snapshot().deterministic_json(),
              vm_metrics.snapshot().deterministic_json());
  }
}

TEST(NativeEngineTest, EngagesAndMatchesVmOnRefinedBuiltins) {
  const std::string dir = fresh_cache_dir("refined");
  ScopedEnv cache_dir("IFSYN_NATIVE_CACHE_DIR", dir.c_str());
  for (auto& [name, make] : builtins()) {
    SCOPED_TRACE(name);
    System original = make();
    System refined = original.clone(std::string(name) + "_refined");
    synthesize(refined);

    obs::MetricsRegistry metrics;
    obs::EventLog log;
    SimulationRun native =
        run_engine(refined, Engine::kNative, &metrics, &log);
    ASSERT_NE(native.interpreter->native(), nullptr)
        << "native engine fell back on refined " << name << ":\n"
        << log.to_jsonl();

    SimulationRun vm = run_engine(refined, Engine::kVm);
    expect_runs_identical(refined, native, "native", vm, "vm");
  }
}

TEST(NativeEngineTest, FallsBackToVmWithoutToolchain) {
  const std::string dir = fresh_cache_dir("notoolchain");
  ScopedEnv cache_dir("IFSYN_NATIVE_CACHE_DIR", dir.c_str());
  ScopedEnv bogus_cxx("IFSYN_NATIVE_CXX", "/nonexistent/ifsyn-no-such-cxx");
  const System sys = suite::make_fig3_system();

  obs::MetricsRegistry metrics;
  obs::EventLog log;
  SimulationRun degraded = run_engine(sys, Engine::kNative, &metrics, &log);

  // Clean degradation: VM engaged, fallback counted, warning logged with
  // the reason — and the run is observationally a pure VM run.
  EXPECT_EQ(degraded.interpreter->native(), nullptr);
  EXPECT_EQ(degraded.interpreter->engine(), Engine::kVm);
  ASSERT_NE(degraded.interpreter->vm(), nullptr);
  const auto snap = metrics.snapshot();
  const auto* fallbacks = snap.find("sim.native.fallbacks");
  ASSERT_NE(fallbacks, nullptr);
  EXPECT_EQ(fallbacks->counter, 1u);
  EXPECT_EQ(fallbacks->determinism, obs::Determinism::kWallClock);
  const auto* engine_gauge = snap.find("sim.engine");
  ASSERT_NE(engine_gauge, nullptr);
  EXPECT_EQ(engine_gauge->gauge, 0);  // Engine::kVm
  bool warned = false;
  for (const auto& e : log.recent()) {
    if (e.severity != obs::Severity::kWarn || e.component != "sim") continue;
    for (const auto& [k, v] : e.fields) {
      if (k == "reason") warned = !v.empty();
    }
  }
  EXPECT_TRUE(warned) << log.to_jsonl();

  obs::MetricsRegistry vm_metrics;
  SimulationRun vm = run_engine(sys, Engine::kVm, &vm_metrics);
  expect_runs_identical(sys, degraded, "native-fallback", vm, "vm");
  // Report byte-identity: the deterministic metrics section (what reports
  // embed) must not betray that a native attempt ever happened.
  EXPECT_EQ(metrics.snapshot().deterministic_json(),
            vm_metrics.snapshot().deterministic_json());
}

TEST(NativeEngineTest, UnknownEngineEnvWarnsAndRunsVm) {
  ScopedEnv engine_env("IFSYN_SIM_ENGINE", "turbo");

  std::string bad;
  EXPECT_EQ(engine_from_env(&bad), Engine::kVm);
  EXPECT_EQ(bad, "turbo");

  const System sys = suite::make_fig3_system();
  obs::MetricsRegistry metrics;
  obs::EventLog log;
  // Default engine argument — the path every production caller takes.
  SimulationRun run = simulate(sys, 20'000'000, false,
                               obs::ObsContext{&metrics, nullptr, nullptr,
                                               &log});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->engine(), Engine::kVm);
  bool warned = false;
  for (const auto& e : log.recent()) {
    if (e.severity != obs::Severity::kWarn || e.component != "sim") continue;
    for (const auto& [k, v] : e.fields) {
      if (k == "value" && v == "turbo") warned = true;
    }
  }
  EXPECT_TRUE(warned) << log.to_jsonl();
}

TEST(NativeEngineTest, RecognizedEngineValuesDoNotWarn) {
  for (const char* value : {"vm", "ast", "native", ""}) {
    SCOPED_TRACE(value);
    ScopedEnv engine_env("IFSYN_SIM_ENGINE", value);
    std::string bad = "sentinel";
    (void)engine_from_env(&bad);
    EXPECT_EQ(bad, "");
  }
}

TEST(NativeArtifactCacheTest, MemoryDiskAndLruThroughProcessSeam) {
  const std::string dir = fresh_cache_dir("cache");
  ScopedEnv cache_dir("IFSYN_NATIVE_CACHE_DIR", dir.c_str());
  const System sys = suite::make_fig3_system();

  // First run compiles; second run in the same cache is a memory hit.
  native::NativeArtifactCache cache1(8);
  native::install_native_cache(&cache1);
  SimulationRun first = run_engine(sys, Engine::kNative);
  ASSERT_NE(first.interpreter->native(), nullptr);
  EXPECT_EQ(cache1.compiles(), 1u);
  EXPECT_EQ(cache1.misses(), 1u);
  EXPECT_EQ(cache1.hits(), 0u);
  SimulationRun second = run_engine(sys, Engine::kNative);
  ASSERT_NE(second.interpreter->native(), nullptr);
  EXPECT_EQ(cache1.compiles(), 1u);
  EXPECT_EQ(cache1.hits(), 1u);
  expect_runs_identical(sys, first, "cold", second, "warm");

  // A fresh cache over the same disk dir loads the artifact instead of
  // recompiling — the cross-process amortization path.
  native::NativeArtifactCache cache2(8);
  native::install_native_cache(&cache2);
  SimulationRun third = run_engine(sys, Engine::kNative);
  ASSERT_NE(third.interpreter->native(), nullptr);
  EXPECT_EQ(cache2.compiles(), 0u);
  EXPECT_EQ(cache2.hits(), 1u);
  expect_runs_identical(sys, first, "cold", third, "disk-warm");

  // Capacity 1 with two distinct systems forces an LRU eviction.
  native::NativeArtifactCache cache3(1);
  native::install_native_cache(&cache3);
  SimulationRun a = run_engine(sys, Engine::kNative);
  ASSERT_NE(a.interpreter->native(), nullptr);
  const System other = suite::make_flc_kernel();
  SimulationRun b = run_engine(other, Engine::kNative);
  ASSERT_NE(b.interpreter->native(), nullptr);
  EXPECT_GE(cache3.evictions(), 1u);
  EXPECT_EQ(cache3.size(), 1u);

  native::install_native_cache(nullptr);
}

}  // namespace
}  // namespace ifsyn::sim
