// Unit tests for the discrete-event kernel: delta-cycle signal semantics,
// wait disciplines, process completion/restart, bus locks, tracing.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include "sim/task.hpp"

namespace ifsyn::sim {
namespace {

FieldKey key(const std::string& sig, const std::string& field = "") {
  return FieldKey{sig, field};
}

TEST(KernelTest, EmptyRunQuiesces) {
  Kernel kernel;
  SimResult result = kernel.run();
  EXPECT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.end_time, 0u);
  EXPECT_TRUE(result.processes.empty());
}

TEST(KernelTest, ProcessRunsToCompletion) {
  Kernel kernel;
  int steps = 0;
  kernel.add_process("p", [&]() -> SimTask {
    ++steps;
    co_return;
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(steps, 1);
  const ProcessStats* stats = result.find("p");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->finish_time, 0u);
}

TEST(KernelTest, WaitForAdvancesTime) {
  Kernel kernel;
  std::uint64_t seen = 0;
  kernel.add_process("p", [&]() -> SimTask {
    { auto aw = kernel.wait_for(7); co_await aw; }
    seen = kernel.now();
    { auto aw = kernel.wait_for(5); co_await aw; }
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(result.end_time, 12u);
  EXPECT_EQ(result.find("p")->finish_time, 12u);
}

TEST(KernelTest, WaitForZeroDoesNotSuspend) {
  Kernel kernel;
  bool done = false;
  kernel.add_process("p", [&]() -> SimTask {
    { auto aw = kernel.wait_for(0); co_await aw; }
    done = true;
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(result.end_time, 0u);
}

TEST(KernelTest, SignalAssignmentCommitsAtDeltaBoundary) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(8, 0));
  BitVector seen_before, seen_after;
  kernel.add_process("writer", [&]() -> SimTask {
    kernel.schedule_signal(key("S"), BitVector::from_uint(8, 42));
    seen_before = kernel.signal_value(key("S"));  // still old value
    { auto aw = kernel.wait_for(1); co_await aw; }
    seen_after = kernel.signal_value(key("S"));
    co_return;
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(seen_before.to_uint(), 0u);
  EXPECT_EQ(seen_after.to_uint(), 42u);
}

TEST(KernelTest, LastWriteInDeltaWins) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(8, 0));
  kernel.add_process("writer", [&]() -> SimTask {
    kernel.schedule_signal(key("S"), BitVector::from_uint(8, 1));
    kernel.schedule_signal(key("S"), BitVector::from_uint(8, 2));
    co_return;
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_EQ(kernel.signal_value(key("S")).to_uint(), 2u);
}

TEST(KernelTest, WaitOnWakesOnEvent) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(1, 0));
  std::uint64_t woke_at = 999;
  kernel.add_process("waiter", [&]() -> SimTask {
    // NOTE: every co_await in these tests awaits a named local, never a
    // prvalue: GCC 12 both rejects braced-init-lists inside co_await
    // operands ("array used as initializer") and miscompiles non-trivial
    // temporaries there (double destruction).
    std::vector<FieldKey> sensitivity{key("S")};
    auto aw = kernel.wait_on(std::move(sensitivity));
    co_await aw;
    woke_at = kernel.now();
  });
  kernel.add_process("driver", [&]() -> SimTask {
    { auto aw = kernel.wait_for(4); co_await aw; }
    kernel.schedule_signal(key("S"), BitVector::from_uint(1, 1));
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(woke_at, 4u);
}

TEST(KernelTest, WaitOnIgnoresValuelessCommit) {
  // Re-writing the same value is not an event.
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(1, 0));
  bool woke = false;
  kernel.add_process("waiter", [&]() -> SimTask {
    { std::vector<FieldKey> sens{key("S")}; auto aw = kernel.wait_on(std::move(sens)); co_await aw; }
    woke = true;
  });
  kernel.add_process("driver", [&]() -> SimTask {
    { auto aw = kernel.wait_for(1); co_await aw; }
    kernel.schedule_signal(key("S"), BitVector::from_uint(1, 0));  // no-op
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_FALSE(woke);
  EXPECT_FALSE(result.find("waiter")->completed);
}

TEST(KernelTest, WaitOnEmptyFieldMatchesAnyFieldOfSignal) {
  Kernel kernel;
  kernel.add_signal_field(key("B", "START"), BitVector::from_uint(1, 0));
  kernel.add_signal_field(key("B", "DATA"), BitVector::from_uint(8, 0));
  bool woke = false;
  kernel.add_process("waiter", [&]() -> SimTask {
    { std::vector<FieldKey> sens{key("B", "")}; auto aw = kernel.wait_on(std::move(sens)); co_await aw; }
    woke = true;
  });
  kernel.add_process("driver", [&]() -> SimTask {
    { auto aw = kernel.wait_for(1); co_await aw; }
    kernel.schedule_signal(key("B", "DATA"), BitVector::from_uint(8, 5));
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_TRUE(woke);
}

TEST(KernelTest, WaitUntilIsLevelSensitive) {
  // Condition already true -> no suspension (documented deviation from
  // strict VHDL, required for robust generated handshakes).
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(1, 1));
  bool done = false;
  kernel.add_process("p", [&]() -> SimTask {
    auto aw = kernel.wait_until([&]() {
      return kernel.signal_value(key("S")).to_uint() == 1;
    });
    co_await aw;
    done = true;
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(result.end_time, 0u);
}

TEST(KernelTest, WaitUntilWakesWhenConditionBecomesTrue) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(8, 0));
  std::uint64_t woke_at = 0;
  kernel.add_process("waiter", [&]() -> SimTask {
    auto aw = kernel.wait_until([&]() {
      return kernel.signal_value(key("S")).to_uint() >= 3;
    });
    co_await aw;
    woke_at = kernel.now();
  });
  kernel.add_process("driver", [&]() -> SimTask {
    for (std::uint64_t v = 1; v <= 5; ++v) {
      { auto aw = kernel.wait_for(10); co_await aw; }
      kernel.schedule_signal(key("S"), BitVector::from_uint(8, v));
    }
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(woke_at, 30u);  // S reaches 3 at t=30
}

TEST(KernelTest, TwoProcessHandshake) {
  // Minimal four-phase handshake straight against the kernel API.
  Kernel kernel;
  kernel.add_signal_field(key("START"), BitVector::from_uint(1, 0));
  kernel.add_signal_field(key("DONE"), BitVector::from_uint(1, 0));
  kernel.add_signal_field(key("DATA"), BitVector::from_uint(8, 0));
  std::vector<std::uint64_t> received;

  auto hi = [&](const char* sig) {
    return kernel.signal_value(key(sig)).to_uint() == 1;
  };

  kernel.add_process("sender", [&]() -> SimTask {
    for (std::uint64_t word = 10; word < 13; ++word) {
      kernel.schedule_signal(key("DATA"), BitVector::from_uint(8, word));
      kernel.schedule_signal(key("START"), BitVector::from_uint(1, 1));
      { auto aw = kernel.wait_for(1); co_await aw; }
      { auto aw = kernel.wait_until([&]() { return hi("DONE"); }); co_await aw; }
      kernel.schedule_signal(key("START"), BitVector::from_uint(1, 0));
      { auto aw = kernel.wait_for(1); co_await aw; }
      { auto aw = kernel.wait_until([&]() { return !hi("DONE"); }); co_await aw; }
    }
  });
  kernel.add_process("receiver", [&]() -> SimTask {
    for (int word = 0; word < 3; ++word) {
      { auto aw = kernel.wait_until([&]() { return hi("START"); }); co_await aw; }
      received.push_back(kernel.signal_value(key("DATA")).to_uint());
      kernel.schedule_signal(key("DONE"), BitVector::from_uint(1, 1));
      { auto aw = kernel.wait_until([&]() { return !hi("START"); }); co_await aw; }
      kernel.schedule_signal(key("DONE"), BitVector::from_uint(1, 0));
    }
  });

  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status;
  EXPECT_TRUE(result.find("sender")->completed);
  EXPECT_TRUE(result.find("receiver")->completed);
  EXPECT_EQ(received, (std::vector<std::uint64_t>{10, 11, 12}));
  // 2 cycles per word minimum (Eq. 2).
  EXPECT_EQ(result.end_time, 6u);
}

TEST(KernelTest, RestartingProcessReactivates) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(8, 0));
  int activations = 0;
  kernel.add_process(
      "server",
      [&]() -> SimTask {
        { std::vector<FieldKey> sens{key("S")}; auto aw = kernel.wait_on(std::move(sens)); co_await aw; }
        ++activations;
      },
      /*restarts=*/true);
  kernel.add_process("driver", [&]() -> SimTask {
    for (std::uint64_t v = 1; v <= 3; ++v) {
      { auto aw = kernel.wait_for(2); co_await aw; }
      kernel.schedule_signal(key("S"), BitVector::from_uint(8, v));
    }
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(activations, 3);
  EXPECT_GE(result.find("server")->activations, 3u);
}

TEST(KernelTest, BusLockSerializesAndAccountsWaiting) {
  Kernel kernel;
  kernel.add_bus_lock("B");
  std::vector<std::string> order;
  // Parameters by value: a coroutine outlives its invocation, so
  // reference parameters to temporaries would dangle across suspension.
  auto worker = [&](std::string name, std::uint64_t start) -> SimTask {
    { auto aw = kernel.wait_for(start); co_await aw; }
    { auto aw = kernel.acquire_bus("B"); co_await aw; }
    order.push_back(name + ":in@" + std::to_string(kernel.now()));
    { auto aw = kernel.wait_for(10); co_await aw; }
    order.push_back(name + ":out@" + std::to_string(kernel.now()));
    kernel.release_bus("B");
  };
  kernel.add_process("a", [&]() { return worker("a", 0); });
  kernel.add_process("b", [&]() { return worker("b", 1); });

  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status;
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a:in@0");
  EXPECT_EQ(order[1], "a:out@10");
  EXPECT_EQ(order[2], "b:in@10");
  EXPECT_EQ(order[3], "b:out@20");
  EXPECT_EQ(result.find("b")->bus_wait_cycles, 9u);
  EXPECT_EQ(result.find("a")->bus_wait_cycles, 0u);
}

TEST(KernelTest, BusLockFifoOrder) {
  Kernel kernel;
  kernel.add_bus_lock("B");
  std::vector<std::string> grants;
  auto worker = [&](std::string name, std::uint64_t start) -> SimTask {
    { auto aw = kernel.wait_for(start); co_await aw; }
    { auto aw = kernel.acquire_bus("B"); co_await aw; }
    grants.push_back(name);
    { auto aw = kernel.wait_for(5); co_await aw; }
    kernel.release_bus("B");
  };
  kernel.add_process("p1", [&]() { return worker("p1", 0); });
  kernel.add_process("p2", [&]() { return worker("p2", 1); });
  kernel.add_process("p3", [&]() { return worker("p3", 2); });
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_EQ(grants, (std::vector<std::string>{"p1", "p2", "p3"}));
}

TEST(KernelTest, MaxTimeAborts) {
  Kernel kernel;
  kernel.add_process("p", [&]() -> SimTask {
    for (;;) { auto aw = kernel.wait_for(100); co_await aw; }
  });
  SimResult result = kernel.run(/*max_time=*/1000);
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
}

TEST(KernelTest, ProcessExceptionSurfacesAsSimulationError) {
  Kernel kernel;
  kernel.add_process("p", [&]() -> SimTask {
    { auto aw = kernel.wait_for(1); co_await aw; }
    IFSYN_ASSERT_MSG(false, "deliberate failure");
  });
  SimResult result = kernel.run();
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
  EXPECT_NE(result.status.message().find("deliberate failure"),
            std::string::npos);
}

TEST(KernelTest, ZeroDelayOscillationIsDetected) {
  // Two processes toggling each other's condition without consuming time:
  // the delta-cycle limit must abort the run instead of hanging.
  Kernel kernel;
  kernel.add_signal_field(key("A"), BitVector::from_uint(1, 0));
  kernel.add_signal_field(key("B"), BitVector::from_uint(1, 0));
  kernel.add_process("ping", [&]() -> SimTask {
    for (;;) {
      kernel.schedule_signal(
          key("A"), ~kernel.signal_value(key("A")));
      auto aw = kernel.wait_on(std::vector<FieldKey>{key("B")});
      co_await aw;
    }
  });
  kernel.add_process("pong", [&]() -> SimTask {
    for (;;) {
      auto aw = kernel.wait_on(std::vector<FieldKey>{key("A")});
      co_await aw;
      kernel.schedule_signal(
          key("B"), ~kernel.signal_value(key("B")));
    }
  });
  SimResult result = kernel.run();
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
  EXPECT_NE(result.status.message().find("delta"), std::string::npos)
      << result.status;
}

TEST(KernelTest, DeltaOverflowErrorNamesTheOffendingInstant) {
  // The oscillation only starts after 42 time units; the abort message
  // must point at t=42, not at the start of the run.
  Kernel kernel;
  kernel.add_signal_field(key("A"), BitVector::from_uint(1, 0));
  kernel.add_signal_field(key("B"), BitVector::from_uint(1, 0));
  kernel.add_process("ping", [&]() -> SimTask {
    { auto aw = kernel.wait_for(42); co_await aw; }
    for (;;) {
      kernel.schedule_signal(key("A"), ~kernel.signal_value(key("A")));
      auto aw = kernel.wait_on(std::vector<FieldKey>{key("B")});
      co_await aw;
    }
  });
  kernel.add_process("pong", [&]() -> SimTask {
    for (;;) {
      auto aw = kernel.wait_on(std::vector<FieldKey>{key("A")});
      co_await aw;
      kernel.schedule_signal(key("B"), ~kernel.signal_value(key("B")));
    }
  });
  SimResult result = kernel.run();
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
  EXPECT_NE(result.status.message().find("delta"), std::string::npos)
      << result.status;
  EXPECT_NE(result.status.message().find("t=42"), std::string::npos)
      << result.status;
  EXPECT_GE(result.kernel.max_deltas_in_instant, 100'000u);
}

TEST(KernelTest, TraceCapAbortsWithErrorInsteadOfGrowingUnbounded) {
  // A chatty process with tracing on must hit the configured cap and fail
  // with a descriptive status, not exhaust memory.
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.set_trace_limit(10);
  kernel.add_signal_field(key("S"), BitVector::from_uint(32, 0));
  kernel.add_process("chatty", [&]() -> SimTask {
    for (std::uint32_t i = 1; i <= 1000; ++i) {
      kernel.schedule_signal(key("S"), BitVector::from_uint(32, i));
      auto aw = kernel.wait_for(1);
      co_await aw;
    }
  });
  SimResult result = kernel.run();
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
  EXPECT_NE(result.status.message().find("trace"), std::string::npos)
      << result.status;
  EXPECT_NE(result.status.message().find("10"), std::string::npos)
      << result.status;
  EXPECT_LE(kernel.trace().size(), 10u);
}

TEST(KernelTest, TraceUnderCapSucceeds) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.set_trace_limit(10);
  kernel.add_signal_field(key("S"), BitVector::from_uint(8, 0));
  kernel.add_process("p", [&]() -> SimTask {
    for (std::uint32_t i = 1; i <= 5; ++i) {
      kernel.schedule_signal(key("S"), BitVector::from_uint(8, i));
      auto aw = kernel.wait_for(1);
      co_await aw;
    }
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_EQ(kernel.trace().size(), 5u);
}

TEST(KernelTest, WideSignalValuesFlowThrough) {
  Kernel kernel;
  kernel.add_signal_field(key("WIDE"), BitVector(130));
  BitVector seen;
  kernel.add_process("writer", [&]() -> SimTask {
    BitVector v(130);
    v.set_bit(0, true);
    v.set_bit(129, true);
    kernel.schedule_signal(key("WIDE"), std::move(v));
    { auto aw = kernel.wait_for(1); co_await aw; }
    seen = kernel.signal_value(key("WIDE"));
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  EXPECT_TRUE(seen.bit(0));
  EXPECT_TRUE(seen.bit(129));
  EXPECT_FALSE(seen.bit(64));
}

TEST(KernelTest, SignalWidthMismatchAsserts) {
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector(8));
  EXPECT_THROW(kernel.schedule_signal(key("S"), BitVector(9)), InternalError);
  EXPECT_THROW(kernel.signal_value(key("GHOST")), InternalError);
}

TEST(KernelTest, ReleaseByNonHolderAsserts) {
  Kernel kernel;
  kernel.add_bus_lock("B");
  kernel.add_process("p", [&]() -> SimTask {
    kernel.release_bus("B");  // never acquired
    co_return;
  });
  SimResult result = kernel.run();
  EXPECT_EQ(result.status.code(), StatusCode::kSimulationError);
}

TEST(KernelTest, TraceRecordsCommittedChanges) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(key("S"), BitVector::from_uint(4, 0));
  kernel.add_process("p", [&]() -> SimTask {
    kernel.schedule_signal(key("S"), BitVector::from_uint(4, 1));
    { auto aw = kernel.wait_for(3); co_await aw; }
    kernel.schedule_signal(key("S"), BitVector::from_uint(4, 2));
    co_return;
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  ASSERT_EQ(kernel.trace().size(), 2u);
  EXPECT_EQ(kernel.trace()[0].time, 0u);
  EXPECT_EQ(kernel.trace()[0].value.to_uint(), 1u);
  EXPECT_EQ(kernel.trace()[1].time, 3u);
  EXPECT_EQ(kernel.trace()[1].value.to_uint(), 2u);
}

TEST(KernelTest, QuiescenceWithWaitingServerIsNormal) {
  // A server parked on an event at the end of simulation is not an error;
  // its stats just show no completion.
  Kernel kernel;
  kernel.add_signal_field(key("S"), BitVector::from_uint(1, 0));
  kernel.add_process("server", [&]() -> SimTask {
    for (;;) {
      { std::vector<FieldKey> sens{key("S")}; auto aw = kernel.wait_on(std::move(sens)); co_await aw; }
    }
  });
  kernel.add_process("main", [&]() -> SimTask {
    { auto aw = kernel.wait_for(5); co_await aw; }
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.end_time, 5u);
  EXPECT_TRUE(result.find("main")->completed);
  EXPECT_FALSE(result.find("server")->completed);
}

TEST(KernelTest, SecondRunStartsAFreshTrace) {
  // Regression: run() used to reset stats but keep appending to the
  // previous run's trace, so re-running a kernel produced a waveform with
  // stale leading entries (and a VCD with duplicated history).
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(key("S"), BitVector::from_uint(4, 0));
  int runs = 0;
  kernel.add_process("p", [&]() -> SimTask {
    ++runs;
    { auto aw = kernel.wait_for(1); co_await aw; }
    kernel.schedule_signal(key("S"), BitVector::from_uint(4, runs));
  });

  ASSERT_TRUE(kernel.run().status.is_ok());
  ASSERT_EQ(kernel.trace().size(), 1u);
  EXPECT_EQ(kernel.trace()[0].value.to_uint(), 1u);

  SimResult second = kernel.run();
  ASSERT_TRUE(second.status.is_ok());
  ASSERT_EQ(kernel.trace().size(), 1u) << "second run appended to old trace";
  EXPECT_EQ(kernel.trace()[0].value.to_uint(), 2u);
  EXPECT_EQ(second.kernel.trace_entries, 1u);
}

TEST(KernelTest, SignalKeysReturnsDeclarationOrder) {
  Kernel kernel;
  kernel.add_signal_field(key("Z"), BitVector(1));
  kernel.add_signal_field(key("A", "F1"), BitVector(8));
  kernel.add_signal_field(key("A", "F0"), BitVector(8));
  const std::vector<FieldKey>& keys = kernel.signal_keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], key("Z"));
  EXPECT_EQ(keys[1], key("A", "F1"));
  EXPECT_EQ(keys[2], key("A", "F0"));
  // The cached list is stable: repeated calls return the same object.
  EXPECT_EQ(&kernel.signal_keys(), &keys);
}

TEST(KernelTest, InternedIdsMirrorTheNameApi) {
  Kernel kernel;
  kernel.add_signal_field(key("X"), BitVector::from_uint(8, 7));
  kernel.add_signal_field(key("B", "DATA"), BitVector(8));
  const SignalId x = kernel.signal_id(key("X"));
  const SignalId data = kernel.signal_id(key("B", "DATA"));
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(data, 1u);
  EXPECT_EQ(kernel.initial_value(x).to_uint(), 7u);

  kernel.add_process("p", [&]() -> SimTask {
    kernel.schedule_signal(data, BitVector::from_uint(8, 0x5a));
    { auto aw = kernel.wait_for(1); co_await aw; }
  });
  kernel.add_process("w", [&]() -> SimTask {
    const std::vector<SignalId> sens{data};
    {
      auto aw = kernel.wait_on(std::span<const SignalId>(sens));
      co_await aw;
    }
    kernel.schedule_signal(x, kernel.signal_value(data));
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(kernel.signal_value(key("X")).to_uint(), 0x5au);
  EXPECT_EQ(kernel.signal_value(x).to_uint(), 0x5au);
  EXPECT_EQ(result.kernel.wakeups_event, 1u);
}

TEST(KernelTest, WildcardSensitivityWakesOnAnyFieldCommit) {
  // FieldKey{sig, ""} subscribes to the whole record: commits to different
  // fields must each wake the waiter, and a commit to an unrelated signal
  // must not.
  Kernel kernel;
  kernel.add_signal_field(key("B", "START"), BitVector(1));
  kernel.add_signal_field(key("B", "DATA"), BitVector(8));
  kernel.add_signal_field(key("OTHER"), BitVector(1));
  std::vector<std::uint64_t> wake_times;
  kernel.add_process("w", [&]() -> SimTask {
    for (int i = 0; i < 2; ++i) {
      { std::vector<FieldKey> sens{key("B")}; auto aw = kernel.wait_on(std::move(sens)); co_await aw; }
      wake_times.push_back(kernel.now());
    }
  });
  kernel.add_process("driver", [&]() -> SimTask {
    kernel.schedule_signal(key("OTHER"), BitVector::from_uint(1, 1));
    { auto aw = kernel.wait_for(1); co_await aw; }
    kernel.schedule_signal(key("B", "START"), BitVector::from_uint(1, 1));
    { auto aw = kernel.wait_for(1); co_await aw; }
    kernel.schedule_signal(key("B", "DATA"), BitVector::from_uint(8, 0x42));
  });
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_EQ(wake_times[0], 1u);  // B.START commit; OTHER did not wake it
  EXPECT_EQ(wake_times[1], 2u);  // B.DATA commit
  EXPECT_EQ(result.kernel.wakeups_event, 2u);
}

TEST(KernelTest, BusLockFairnessUnderContention) {
  // Three waiters queue behind a holder; grants must come in FIFO order
  // and the accounting must attribute each waiter's queueing time.
  Kernel kernel;
  kernel.add_bus_lock("BUS");
  std::vector<std::string> grant_order;
  kernel.add_process("holder", [&]() -> SimTask {
    { auto aw = kernel.acquire_bus("BUS"); co_await aw; }
    grant_order.push_back("holder");
    { auto aw = kernel.wait_for(4); co_await aw; }
    kernel.release_bus("BUS");
  });
  // `name` by value: reference parameters would dangle once the factory's
  // temporary dies at the coroutine's first suspension.
  auto contender = [&](std::string name, std::uint64_t start,
                       std::uint64_t hold) -> SimTask {
    { auto aw = kernel.wait_for(start); co_await aw; }
    { auto aw = kernel.acquire_bus("BUS"); co_await aw; }
    grant_order.push_back(name);
    { auto aw = kernel.wait_for(hold); co_await aw; }
    kernel.release_bus("BUS");
  };
  // Queue order is arrival order: c3 (t=1), c1 (t=2), c2 (t=3) — not
  // registration or name order.
  kernel.add_process("c1", [&]() { return contender("c1", 2, 2); });
  kernel.add_process("c2", [&]() { return contender("c2", 3, 2); });
  kernel.add_process("c3", [&]() { return contender("c3", 1, 2); });

  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  ASSERT_EQ(grant_order.size(), 4u);
  EXPECT_EQ(grant_order[0], "holder");
  EXPECT_EQ(grant_order[1], "c3");
  EXPECT_EQ(grant_order[2], "c1");
  EXPECT_EQ(grant_order[3], "c2");

  const BusStats* bus = result.find_bus("BUS");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->acquisitions, 4u);
  EXPECT_EQ(bus->contended_acquisitions, 3u);
  // holder releases at t=4: c3 (queued at t=1) waited 3. c3 releases at
  // t=6: c1 (queued at t=2) waited 4. c1 releases at t=8: c2 (queued at
  // t=3) waited 5. Total queueing 3 + 4 + 5 = 12.
  EXPECT_EQ(bus->wait_cycles, 12u);
  EXPECT_EQ(result.find("c3")->bus_wait_cycles, 3u);
  EXPECT_EQ(result.find("c1")->bus_wait_cycles, 4u);
  EXPECT_EQ(result.find("c2")->bus_wait_cycles, 5u);
  EXPECT_EQ(bus->hold_cycles, 4u + 2u + 2u + 2u);
  EXPECT_EQ(result.kernel.wakeups_bus_grant, 3u);
}

}  // namespace
}  // namespace ifsyn::sim
