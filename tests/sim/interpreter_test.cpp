// Interpreter tests: expression evaluation, statement execution, scoping,
// procedure copy-in/copy-out, process interaction through signals.
#include "sim/interpreter.hpp"

#include <gtest/gtest.h>

#include "spec/system.hpp"

namespace ifsyn::sim {
namespace {

using namespace spec;

/// Build a one-process system around `body` with the given system
/// variables, run it, and hand back the run for inspection.
SimulationRun run_body(std::vector<Variable> vars, Block body,
                       std::vector<Variable> locals = {}) {
  System system("t");
  for (auto& v : vars) system.add_variable(std::move(v));
  Process p;
  p.name = "main";
  p.locals = std::move(locals);
  p.body = std::move(body);
  system.add_process(std::move(p));
  return simulate(system);
}

TEST(InterpreterTest, ScalarAssignmentAndArithmetic) {
  auto run = run_body({Variable("X", Type::integer(32))},
                      {assign("X", add(mul(lit(6), lit(7)), lit(0)))});
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("X").get().to_int(), 42);
}

TEST(InterpreterTest, SignedArithmeticAndNegatives) {
  auto run = run_body({Variable("X", Type::integer(16))},
                      {assign("X", sub(lit(3), lit(10)))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("X").get().to_int(), -7);
}

TEST(InterpreterTest, DivModTruncateTowardZero) {
  auto run = run_body({Variable("Q", Type::integer(32)),
                       Variable("R", Type::integer(32))},
                      {assign("Q", spec::div(lit(17), lit(5))),
                       assign("R", mod(lit(17), lit(5)))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("Q").get().to_int(), 3);
  EXPECT_EQ(run.interpreter->value_of("R").get().to_int(), 2);
}

TEST(InterpreterTest, BitsAssignmentTruncatesToWidth) {
  auto run = run_body({Variable("X", Type::bits(8))},
                      {assign("X", lit(0x1ff))});  // 9 bits -> keeps low 8
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(), 0xffu);
}

TEST(InterpreterTest, ArrayElementReadWrite) {
  auto run = run_body(
      {Variable("A", Type::array(Type::bits(16), 8)),
       Variable("Y", Type::bits(16))},
      {assign(lv_idx("A", lit(3)), lit(500)),
       assign("Y", add(aref("A", lit(3)), lit(1)))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("A").at(3).to_uint(), 500u);
  EXPECT_EQ(run.interpreter->value_of("Y").get().to_uint(), 501u);
}

TEST(InterpreterTest, SliceReadAndWrite) {
  auto run = run_body(
      {Variable("X", Type::bits(16)), Variable("HI", Type::bits(8))},
      {assign("X", lit(0xabcd)),
       assign("HI", slice(var("X"), 15, 8)),
       assign(lv_slice("X", lit(7), lit(0)), lit(0x11))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("HI").get().to_uint(), 0xabu);
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(), 0xab11u);
}

TEST(InterpreterTest, ConcatBuildsMessages) {
  // concat(addr, data): address lands in the high bits, as the generated
  // Send procedures assume.
  auto run = run_body(
      {Variable("M", Type::bits(23))},
      {assign("M", concat(bits(BitVector::from_uint(7, 0x55)),
                          bits(BitVector::from_uint(16, 0x1234))))});
  ASSERT_TRUE(run.result.status.is_ok());
  const BitVector& m = run.interpreter->value_of("M").get();
  EXPECT_EQ(m.slice(22, 16).to_uint(), 0x55u);
  EXPECT_EQ(m.slice(15, 0).to_uint(), 0x1234u);
}

TEST(InterpreterTest, ForLoopAccumulates) {
  auto run = run_body(
      {Variable("S", Type::integer(32))},
      {for_stmt("I", lit(1), lit(10),
                {assign("S", add(var("S"), var("I")))})});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("S").get().to_int(), 55);
}

TEST(InterpreterTest, ForLoopVariableIsScopedAndRestored) {
  auto run = run_body(
      {Variable("OUT", Type::integer(32))},
      {
          for_stmt("I", lit(0), lit(2), {}),
          // Same name as an existing local: the loop shadows, then
          // restores it.
          assign("OUT", var("J")),
      },
      {Variable("J", Type::integer(32), Value::integer(99))});
  // Inner loop over J shadows the local:
  System system("t2");
  system.add_variable(Variable("OUT", Type::integer(32)));
  Process p;
  p.name = "main";
  p.locals.emplace_back("J", Type::integer(32), Value::integer(99));
  p.body = {
      for_stmt("J", lit(0), lit(5), {}),
      assign("OUT", var("J")),  // must see 99 again, not the loop index
  };
  system.add_process(std::move(p));
  auto run2 = simulate(system);
  ASSERT_TRUE(run2.result.status.is_ok());
  EXPECT_EQ(run2.interpreter->value_of("OUT").get().to_int(), 99);
  ASSERT_TRUE(run.result.status.is_ok());
}

TEST(InterpreterTest, WhileLoopAndComparisons) {
  auto run = run_body(
      {Variable("N", Type::integer(32)), Variable("C", Type::integer(32))},
      {assign("N", lit(1)),
       while_stmt(lt(var("N"), lit(100)),
                  {assign("N", mul(var("N"), lit(2))),
                   assign("C", add(var("C"), lit(1)))})});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("N").get().to_int(), 128);
  EXPECT_EQ(run.interpreter->value_of("C").get().to_int(), 7);
}

TEST(InterpreterTest, IfElseBranches) {
  auto run = run_body(
      {Variable("X", Type::integer(32))},
      {if_stmt(gt(lit(3), lit(5)), {assign("X", lit(1))},
               {if_stmt(le(lit(3), lit(3)), {assign("X", lit(2))},
                        {assign("X", lit(3))})})});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("X").get().to_int(), 2);
}

TEST(InterpreterTest, UnsignedComparisonOnBits) {
  // 0x80 > 0x7f as unsigned bits (would be negative as signed).
  auto run = run_body(
      {Variable("A", Type::bits(8), Value::scalar(BitVector::from_uint(8, 0x80))),
       Variable("B2", Type::bits(8), Value::scalar(BitVector::from_uint(8, 0x7f))),
       Variable("R", Type::integer(32))},
      {if_stmt(gt(var("A"), var("B2")), {assign("R", lit(1))},
               {assign("R", lit(0))})});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("R").get().to_int(), 1);
}

TEST(InterpreterTest, ProcedureCopyInCopyOut) {
  System system("t");
  system.add_variable(Variable("OUT", Type::bits(16)));

  Procedure proc;
  proc.name = "AddOne";
  proc.params = {Param{"a", ParamDir::kIn, Type::bits(16)},
                 Param{"r", ParamDir::kOut, Type::bits(16)}};
  proc.body = {assign("r", add(var("a"), lit(1)))};
  system.add_procedure(std::move(proc));

  Process p;
  p.name = "main";
  p.body = {call("AddOne", {ExprPtr(lit(41)), lv("OUT")})};
  system.add_process(std::move(p));

  auto run = simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("OUT").get().to_uint(), 42u);
}

TEST(InterpreterTest, NestedProcedureCallsKeepFramesSeparate) {
  System system("t");
  system.add_variable(Variable("OUT", Type::integer(32)));

  Procedure inner;
  inner.name = "Inner";
  inner.params = {Param{"x", ParamDir::kIn, Type::integer(32)},
                  Param{"r", ParamDir::kOut, Type::integer(32)}};
  inner.body = {assign("r", mul(var("x"), lit(3)))};
  system.add_procedure(std::move(inner));

  Procedure outer;
  outer.name = "Outer";
  outer.params = {Param{"x", ParamDir::kIn, Type::integer(32)},
                  Param{"r", ParamDir::kOut, Type::integer(32)}};
  outer.locals.emplace_back("t", Type::integer(32));
  outer.body = {call("Inner", {ExprPtr(add(var("x"), lit(1))), lv("t")}),
                assign("r", add(var("t"), lit(100)))};
  system.add_procedure(std::move(outer));

  Process p;
  p.name = "main";
  p.body = {call("Outer", {ExprPtr(lit(5)), lv("OUT")})};
  system.add_process(std::move(p));

  auto run = simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("OUT").get().to_int(), 118);
}

TEST(InterpreterTest, SignalAssignAndWaitUntilBetweenProcesses) {
  System system("t");
  system.add_variable(Variable("GOT", Type::bits(8)));
  Signal s;
  s.name = "S";
  s.fields = {SignalField{"REQ", 1}, SignalField{"VAL", 8}};
  system.add_signal(std::move(s));

  Process producer;
  producer.name = "producer";
  producer.body = {
      wait_for(3),
      sig_assign("S", "VAL", lit(0x5a)),
      sig_assign("S", "REQ", lit(1)),
  };
  system.add_process(std::move(producer));

  Process consumer;
  consumer.name = "consumer";
  consumer.body = {
      wait_until(eq(sig("S", "REQ"), lit(1))),
      assign("GOT", sig("S", "VAL")),
  };
  system.add_process(std::move(consumer));

  auto run = simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("GOT").get().to_uint(), 0x5au);
  EXPECT_EQ(run.result.find("consumer")->finish_time, 3u);
}

TEST(InterpreterTest, WaitOnSensitivityFromSpec) {
  System system("t");
  system.add_variable(Variable("COUNT", Type::integer(32)));
  Signal s;
  s.name = "S";
  s.fields = {SignalField{"", 8}};
  system.add_signal(std::move(s));

  Process server;
  server.name = "server";
  server.body = {forever({
      wait_on({SignalFieldId{"S", ""}}),
      assign("COUNT", add(var("COUNT"), lit(1))),
  })};
  system.add_process(std::move(server));

  Process driver;
  driver.name = "driver";
  driver.body = {
      wait_for(1), sig_assign("S", "", lit(1)),
      wait_for(1), sig_assign("S", "", lit(2)),
      wait_for(1), sig_assign("S", "", lit(3)),
  };
  system.add_process(std::move(driver));

  auto run = simulate(system);
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("COUNT").get().to_int(), 3);
}

TEST(InterpreterTest, ProcessLocalInitializers) {
  auto run = run_body(
      {Variable("OUT", Type::integer(32))},
      {assign("OUT", var("L"))},
      {Variable("L", Type::integer(32), Value::integer(1234))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("OUT").get().to_int(), 1234);
}

TEST(InterpreterTest, VariableInitializersApply) {
  Variable arr("A", Type::array(Type::bits(8), 4));
  Value init(arr.type);
  for (int i = 0; i < 4; ++i)
    init.set_at(i, BitVector::from_uint(8, static_cast<std::uint64_t>(i * 11)));
  arr.init = init;
  auto run = run_body({std::move(arr), Variable("Y", Type::bits(8))},
                      {assign("Y", aref("A", lit(3)))});
  ASSERT_TRUE(run.result.status.is_ok());
  EXPECT_EQ(run.interpreter->value_of("Y").get().to_uint(), 33u);
}

TEST(InterpreterTest, UndeclaredVariableFailsTheProcess) {
  auto run = run_body({}, {assign("NOPE", lit(1))});
  EXPECT_EQ(run.result.status.code(), StatusCode::kSimulationError);
}

TEST(InterpreterTest, OutOfBoundsIndexFailsTheProcess) {
  auto run = run_body({Variable("A", Type::array(Type::bits(8), 4))},
                      {assign(lv_idx("A", lit(4)), lit(1))});
  EXPECT_EQ(run.result.status.code(), StatusCode::kSimulationError);
}

TEST(InterpreterTest, SetValueInjectsStimulus) {
  System system("t");
  system.add_variable(Variable("IN", Type::bits(8)));
  system.add_variable(Variable("OUT", Type::bits(8)));
  Process p;
  p.name = "main";
  p.body = {assign("OUT", add(var("IN"), lit(1)))};
  system.add_process(std::move(p));

  Kernel kernel;
  Interpreter interp(system, kernel);
  ASSERT_TRUE(interp.setup().is_ok());
  interp.set_value("IN", Value::scalar(BitVector::from_uint(8, 41)));
  SimResult result = kernel.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(interp.value_of("OUT").get().to_uint(), 42u);
}

}  // namespace
}  // namespace ifsyn::sim
