// VCD export of simulation traces.
#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "suite/fig3_example.hpp"

namespace ifsyn::sim {
namespace {

TEST(VcdTest, HeaderAndDeclarations) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(FieldKey{"B", "START"}, BitVector::from_uint(1, 0));
  kernel.add_signal_field(FieldKey{"B", "DATA"}, BitVector::from_uint(8, 0));
  kernel.add_process("p", [&]() -> SimTask {
    kernel.schedule_signal(FieldKey{"B", "START"}, BitVector::from_uint(1, 1));
    { auto aw = kernel.wait_for(3); co_await aw; }
    kernel.schedule_signal(FieldKey{"B", "DATA"}, BitVector::from_uint(8, 0x5a));
    kernel.schedule_signal(FieldKey{"B", "START"}, BitVector::from_uint(1, 0));
  });
  ASSERT_TRUE(kernel.run().status.is_ok());

  const std::string vcd = trace_to_vcd(kernel);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module ifsyn $end"), std::string::npos);
  // Fields are emitted in declaration order: B.START was declared first
  // and gets the first identifier code.
  EXPECT_NE(vcd.find("$var wire 1 ! B.START $end"), std::string::npos) << vcd;
  EXPECT_NE(vcd.find("$var wire 8 \" B.DATA [7:0]"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, InitialValuesAndChanges) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(FieldKey{"S", ""}, BitVector::from_uint(4, 0x9));
  kernel.add_process("p", [&]() -> SimTask {
    { auto aw = kernel.wait_for(2); co_await aw; }
    kernel.schedule_signal(FieldKey{"S", ""}, BitVector::from_uint(4, 0x3));
  });
  ASSERT_TRUE(kernel.run().status.is_ok());

  const std::string vcd = trace_to_vcd(kernel);
  // Time 0 dump has the declared initial value.
  const auto dumpvars = vcd.find("$dumpvars");
  ASSERT_NE(dumpvars, std::string::npos);
  EXPECT_NE(vcd.find("b1001 !", dumpvars), std::string::npos) << vcd;
  // The change appears under its timestamp.
  const auto t2 = vcd.find("#2");
  ASSERT_NE(t2, std::string::npos);
  EXPECT_NE(vcd.find("b0011 !", t2), std::string::npos);
}

TEST(VcdTest, ScalarBitsUseCompactForm) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(FieldKey{"CLK", ""}, BitVector::from_uint(1, 0));
  kernel.add_process("p", [&]() -> SimTask {
    for (int i = 0; i < 3; ++i) {
      { auto aw = kernel.wait_for(1); co_await aw; }
      kernel.schedule_signal(
          FieldKey{"CLK", ""},
          BitVector::from_uint(1, static_cast<std::uint64_t>(i % 2 == 0)));
    }
  });
  ASSERT_TRUE(kernel.run().status.is_ok());
  const std::string vcd = trace_to_vcd(kernel);
  EXPECT_NE(vcd.find("\n1!"), std::string::npos) << vcd;
  EXPECT_NE(vcd.find("\n0!"), std::string::npos);
}

TEST(VcdTest, RefinedFig3WaveformContainsHandshakes) {
  spec::System refined = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());

  SimulationRun run = simulate(refined, 1'000'000, /*trace=*/true);
  ASSERT_TRUE(run.result.status.is_ok());
  const std::string vcd = trace_to_vcd(*run.kernel);
  EXPECT_NE(vcd.find("B.START"), std::string::npos);
  EXPECT_NE(vcd.find("B.DONE"), std::string::npos);
  EXPECT_NE(vcd.find("B.ID"), std::string::npos);
  EXPECT_NE(vcd.find("B.DATA"), std::string::npos);
  // The bus carried X=32: its low byte appears as a DATA word.
  EXPECT_NE(vcd.find("b00100000 "), std::string::npos);
}

TEST(VcdTest, WriteToFile) {
  Kernel kernel;
  kernel.enable_trace(true);
  kernel.add_signal_field(FieldKey{"S", ""}, BitVector(1));
  ASSERT_TRUE(kernel.run().status.is_ok());
  const std::string path = "/tmp/ifsyn_vcd_test.vcd";
  ASSERT_TRUE(write_vcd(kernel, path).is_ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "$date ifsyn simulation $end");
  EXPECT_FALSE(write_vcd(kernel, "/nonexistent-dir/x.vcd").is_ok());
}

TEST(VcdTest, ManySignalsGetDistinctIds) {
  Kernel kernel;
  kernel.enable_trace(true);
  for (int i = 0; i < 120; ++i) {
    kernel.add_signal_field(FieldKey{"S" + std::to_string(i), ""},
                            BitVector(1));
  }
  ASSERT_TRUE(kernel.run().status.is_ok());
  const std::string vcd = trace_to_vcd(kernel);
  // 120 > 94 printable codes: multi-character identifiers appear and all
  // declarations are present.
  int vars = 0;
  for (std::size_t pos = 0; (pos = vcd.find("$var", pos)) != std::string::npos;
       ++pos) {
    ++vars;
  }
  EXPECT_EQ(vars, 120);
}

}  // namespace
}  // namespace ifsyn::sim
