// Regression: the committed signal trace -- and the VCD rendered from it
// -- must be byte-identical across every (engine, optimizer) pairing.
// The bytecode optimizer's bulk-transfer superinstructions (kBulkSend /
// kBulkRecv) collapse whole word loops into single ops; a bug there
// would show up as a reordered or re-timed commit, so the system under
// test is deliberately transfer-heavy: wide array elements squeezed
// through a narrow bus, giving many words per message on both the send
// and receive paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "sim/vcd.hpp"
#include "spec/system.hpp"

namespace ifsyn {
namespace {

using namespace spec;

/// Forces IFSYN_SIM_OPT for one run; restores the previous value.
class ScopedSimOpt {
 public:
  explicit ScopedSimOpt(const char* value) {
    const char* old = std::getenv("IFSYN_SIM_OPT");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv("IFSYN_SIM_OPT", value, 1);
  }
  ~ScopedSimOpt() {
    if (had_) {
      setenv("IFSYN_SIM_OPT", saved_.c_str(), 1);
    } else {
      unsetenv("IFSYN_SIM_OPT");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

/// One process streaming a 16 x 24-bit array out and back over a 5-bit
/// bus: every element transfer is several DATA words in each direction.
System make_transfer_heavy_system() {
  System s("bulk");
  s.add_variable(Variable("V", Type::array(Type::bits(24), 16)));

  Process p;
  p.name = "P0";
  p.locals.emplace_back("ACC", Type::integer(32), Value::integer(0));
  p.locals.emplace_back("TMP", Type::integer(32));
  p.body.push_back(for_stmt("i", lit(0), lit(15),
                            {assign(lv_idx("V", var("i")),
                                    add(mul(var("i"), lit(257)), lit(9)))}));
  p.body.push_back(for_stmt("i", lit(0), lit(15),
                            {assign("TMP", aref("V", var("i"))),
                             assign("ACC", add(var("ACC"), var("TMP")))}));
  s.add_process(std::move(p));

  partition::ModuleAssignment m1{"M1", {"P0"}, {}};
  partition::ModuleAssignment m2{"M2", {}, {"V"}};
  if (!partition::apply_partition(s, {m1, m2}).is_ok()) abort();
  if (!partition::group_all_channels(s, "TB").is_ok()) abort();

  System refined = s.clone("bulk_refined");
  refined.find_bus("TB")->width = 5;
  protocol::ProtocolGenOptions options;
  options.protocol = ProtocolKind::kFullHandshake;
  options.arbitrate = true;
  protocol::ProtocolGenerator gen(options);
  if (!gen.generate_all(refined).is_ok()) abort();
  return refined;
}

struct Leg {
  const char* name;
  sim::Engine engine;
  const char* opt;
};

TEST(TraceIdentityTest, TraceAndVcdAreByteIdenticalAcrossEnginesAndOpt) {
  const System system = make_transfer_heavy_system();

  const Leg legs[] = {
      {"vm opt=0", sim::Engine::kVm, "0"},
      {"vm opt=1", sim::Engine::kVm, "1"},
      {"native opt=0", sim::Engine::kNative, "0"},
      {"native opt=1", sim::Engine::kNative, "1"},
  };

  std::vector<sim::SimulationRun> runs;
  std::vector<std::string> vcds;
  obs::MetricsRegistry opt_registry;  // watches the vm opt=1 leg
  for (const Leg& leg : legs) {
    ScopedSimOpt opt(leg.opt);
    obs::ObsContext obs;
    if (leg.engine == sim::Engine::kVm && leg.opt[0] == '1') {
      obs.metrics = &opt_registry;
    }
    runs.push_back(
        sim::simulate(system, 1'000'000, /*trace=*/true, obs, leg.engine));
    ASSERT_TRUE(runs.back().result.status.is_ok())
        << leg.name << ": " << runs.back().result.status.to_string();
    vcds.push_back(sim::trace_to_vcd(*runs.back().kernel));
  }

  // The workload actually exercised the bulk superinstructions; without
  // this the identity assertions below would vacuously pass on the
  // non-bulk code path.
  const obs::MetricsSnapshot snapshot = opt_registry.snapshot();
  const obs::MetricsSnapshot::Entry* bulk =
      snapshot.find("sim.vm.opt.bulk_ops");
  ASSERT_NE(bulk, nullptr);
  EXPECT_GT(bulk->counter, 0u) << "transfer loops were not bulk-optimized";

  const std::vector<sim::TraceEntry>& reference = runs[0].kernel->trace();
  ASSERT_FALSE(reference.empty());
  for (std::size_t leg = 1; leg < runs.size(); ++leg) {
    SCOPED_TRACE(::testing::Message()
                 << legs[leg].name << " vs " << legs[0].name);
    const std::vector<sim::TraceEntry>& trace = runs[leg].kernel->trace();
    ASSERT_EQ(trace.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(trace[i].time, reference[i].time) << "entry " << i;
      EXPECT_EQ(trace[i].delta, reference[i].delta) << "entry " << i;
      EXPECT_EQ(trace[i].key.to_string(), reference[i].key.to_string())
          << "entry " << i;
      EXPECT_EQ(trace[i].value.to_hex_string(),
                reference[i].value.to_hex_string())
          << "entry " << i << " (" << trace[i].key.to_string() << ")";
    }
    EXPECT_EQ(vcds[leg], vcds[0]);
  }
}

}  // namespace
}  // namespace ifsyn
