// Optimizer tests: the declarative instruction-pattern matcher
// (matchers.hpp) and the post-compile rewrite pass (optimizer.hpp) —
// pattern capture/unification semantics, peephole fusions, bulk-transfer
// recognition on protocol-refined systems, the interior-jump-target
// safety rule, and the byte-identity contract: deterministic simulation
// results and sim.vm.executed_ops must not depend on IFSYN_SIM_OPT.
#include "sim/bytecode/optimizer.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/bytecode/compiler.hpp"
#include "sim/bytecode/matchers.hpp"
#include "sim/bytecode/vm.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"

namespace ifsyn::sim::bytecode {
namespace {

using namespace spec;

int count_op(const ProcProgram& prog, Op op) {
  int n = 0;
  for (const Instr& in : prog.code) n += in.op == op ? 1 : 0;
  for (const Instr& in : prog.cond_code) n += in.op == op ? 1 : 0;
  return n;
}

int count_op(const CompiledSystem& cs, Op op) {
  int n = 0;
  for (const ProcProgram& p : cs.processes) n += count_op(p, op);
  return n;
}

/// Forces IFSYN_SIM_OPT for one scope; restores the previous value (CI
/// runs whole suites under =0, which must survive these tests).
class ScopedSimOpt {
 public:
  explicit ScopedSimOpt(const char* value) {
    const char* old = std::getenv("IFSYN_SIM_OPT");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv("IFSYN_SIM_OPT", value, 1);
  }
  ~ScopedSimOpt() {
    if (had_) {
      ::setenv("IFSYN_SIM_OPT", saved_.c_str(), 1);
    } else {
      ::unsetenv("IFSYN_SIM_OPT");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

// ---- matcher --------------------------------------------------------------

TEST(MatchContextTest, BindsOnFirstUseUnifiesOnLater) {
  MatchContext ctx;
  EXPECT_FALSE(ctx.is_bound(0));
  EXPECT_TRUE(ctx.bind(0, 7));   // first use binds
  EXPECT_TRUE(ctx.is_bound(0));
  EXPECT_EQ(ctx[0], 7);
  EXPECT_TRUE(ctx.bind(0, 7));   // same value unifies
  EXPECT_FALSE(ctx.bind(0, 8));  // different value does not
  EXPECT_TRUE(ctx.bind(1, 8));   // other slots are independent
  ctx.clear();
  EXPECT_FALSE(ctx.is_bound(0));
  EXPECT_TRUE(ctx.bind(0, 9));
  EXPECT_EQ(ctx[0], 9);
}

TEST(PatternTest, MatchesAnchoredSequencesWithCaptures) {
  // The wait-for-imm shape: the same register capture threads the
  // producer->consumer chain kConst -> kToInt -> kWaitFor.
  const Pattern p{{
      ip(Op::kConst, any_(), cap_(0), cap_(1)),
      ip(Op::kToInt, any_(), cap_(0), cap_(0)),
      ip(Op::kWaitFor, any_(), any_(), cap_(0)),
  }};
  const std::vector<Instr> code = {
      Instr{.op = Op::kHalt},
      Instr{.op = Op::kConst, .dst = 3, .a = 5},
      Instr{.op = Op::kToInt, .dst = 3, .a = 3},
      Instr{.op = Op::kWaitFor, .a = 3},
  };
  MatchContext ctx;
  EXPECT_FALSE(p.match(code, 0, ctx)) << "anchored: kHalt is not kConst";
  ASSERT_TRUE(p.match(code, 1, ctx));
  EXPECT_EQ(ctx[0], 3) << "register capture";
  EXPECT_EQ(ctx[1], 5) << "const pool capture";
  EXPECT_FALSE(p.match(code, 2, ctx)) << "window too short";

  // A broken def-use chain (kWaitFor reads a different register) fails
  // unification even though every opcode lines up.
  std::vector<Instr> broken = code;
  broken[3].a = 2;
  EXPECT_FALSE(p.match(broken, 1, ctx));
}

TEST(PatternTest, LiteralCellsAndOpcodeAlternatives) {
  const Pattern p{{
      ip_any({Op::kLoadVar, Op::kConst}, any_(), lit_(0)),
      ip(Op::kBinary, lit_(static_cast<std::int64_t>(BinaryOp::kAdd)),
         lit_(0), lit_(0), cap_(0)),
  }};
  MatchContext ctx;
  const std::vector<Instr> add = {
      Instr{.op = Op::kConst, .dst = 0, .a = 2},
      Instr{.op = Op::kBinary,
            .aux = static_cast<std::uint8_t>(BinaryOp::kAdd),
            .dst = 0, .a = 0, .b = 1},
  };
  ASSERT_TRUE(p.match(add, 0, ctx));
  EXPECT_EQ(ctx[0], 1);

  std::vector<Instr> sub = add;
  sub[1].aux = static_cast<std::uint8_t>(BinaryOp::kSub);
  EXPECT_FALSE(p.match(sub, 0, ctx)) << "aux literal must reject kSub";

  std::vector<Instr> wrong_dst = add;
  wrong_dst[0].dst = 1;
  EXPECT_FALSE(p.match(wrong_dst, 0, ctx)) << "dst literal must reject r1";

  std::vector<Instr> signal_load = add;
  signal_load[0].op = Op::kLoadSignal;
  EXPECT_FALSE(p.match(signal_load, 0, ctx))
      << "opcode alternatives are a closed set";
}

// ---- env selection --------------------------------------------------------

TEST(OptimizerEnvTest, EnvVariablePicksLevel) {
  ScopedSimOpt restore_after("1");  // snapshots + restores the prior state
  ::unsetenv("IFSYN_SIM_OPT");
  EXPECT_EQ(opt_level_from_env(), OptLevel::kFull) << "default is optimized";
  ::setenv("IFSYN_SIM_OPT", "0", 1);
  EXPECT_EQ(opt_level_from_env(), OptLevel::kNone);
  ::setenv("IFSYN_SIM_OPT", "1", 1);
  EXPECT_EQ(opt_level_from_env(), OptLevel::kFull);
}

// ---- peephole rewrites ----------------------------------------------------

TEST(OptimizerTest, FoldsWaitForIntoImmediate) {
  System system("t");
  Process p;
  p.name = "main";
  p.body = {wait_for(3)};
  system.add_process(std::move(p));

  Kernel k1;
  const CompiledSystem ref = compile(system, k1);
  EXPECT_EQ(ref.opt_level, OptLevel::kNone);
  EXPECT_EQ(count_op(ref, Op::kWaitFor), 1);
  EXPECT_EQ(count_op(ref, Op::kWaitForImm), 0);
  EXPECT_EQ(ref.optimized_instructions, ref.total_instructions);

  Kernel k2;
  const CompiledSystem opt = compile(system, k2, OptLevel::kFull);
  EXPECT_EQ(opt.opt_level, OptLevel::kFull);
  EXPECT_EQ(count_op(opt, Op::kWaitForImm), 1);
  EXPECT_EQ(count_op(opt, Op::kWaitFor), 0);
  EXPECT_EQ(count_op(opt, Op::kToInt), 0);
  EXPECT_GE(opt.opt.patterns_matched, 1u);
  EXPECT_LT(opt.optimized_instructions, opt.total_instructions);
  EXPECT_EQ(opt.total_instructions - opt.optimized_instructions,
            opt.opt.instructions_eliminated);
  EXPECT_EQ(opt.total_instructions, ref.total_instructions)
      << "reported compile size must not depend on the opt level";
}

TEST(OptimizerTest, FusesLoadBinaryStoreChains) {
  // X := X + 1 lowers to kLoadVar/kConst/kBinary/kStoreVar; the optimizer
  // collapses the whole statement into one three-address kBinaryFused.
  System system("t");
  system.add_variable(Variable("X", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {assign("X", add(var("X"), lit(1)))};
  system.add_process(std::move(p));

  Kernel k1;
  const CompiledSystem ref = compile(system, k1);
  EXPECT_EQ(count_op(ref, Op::kBinary), 1);
  EXPECT_EQ(count_op(ref, Op::kBinaryFused), 0);

  Kernel k2;
  const CompiledSystem opt = compile(system, k2, OptLevel::kFull);
  EXPECT_EQ(count_op(opt, Op::kBinaryFused), 1);
  EXPECT_EQ(count_op(opt, Op::kBinary), 0);
  EXPECT_EQ(count_op(opt, Op::kStoreVar), 0);
  ASSERT_EQ(opt.processes[0].fusions.size(), 1u);
  const FusedBinary& f = opt.processes[0].fusions[0];
  EXPECT_TRUE(f.has_store);
  EXPECT_EQ(f.op, BinaryOp::kAdd);
  EXPECT_EQ(f.weight, 4u) << "weight = dispatch count of the fused sequence";
}

TEST(OptimizerTest, NeverFusesConstConstBinary) {
  // The compiler keeps 1/0 as runtime code (lazy error); the optimizer
  // must leave it on the generic path too, so the per-execution error
  // timing is unchanged.
  System system("t");
  system.add_variable(Variable("X", Type::integer(32)));
  Process p;
  p.name = "main";
  p.body = {if_stmt(eq(lit(1), lit(2)),
                    {assign("X", spec::div(lit(1), lit(0)))})};
  system.add_process(std::move(p));

  Kernel kernel;
  const CompiledSystem opt = compile(system, kernel, OptLevel::kFull);
  EXPECT_EQ(count_op(opt, Op::kBinary), 1)
      << "div-by-zero must remain as runtime code even at kFull";
}

// ---- safety: control flow never lands mid-superinstruction ----------------

TEST(OptimizerTest, InteriorJumpTargetBlocksRewrite) {
  // Hand-built program: a wait-for-imm candidate whose kWaitFor row is
  // also a jump target. Rewriting would swallow the landing pc into the
  // superinstruction interior, so the match must be rejected.
  const std::vector<Instr> seq = {
      Instr{.op = Op::kConst, .dst = 0, .a = 0},
      Instr{.op = Op::kToInt, .dst = 0, .a = 0},
      Instr{.op = Op::kWaitFor, .a = 0},
      Instr{.op = Op::kHalt},
  };

  CompiledSystem blocked;
  {
    ProcProgram prog;
    prog.process_name = "p";
    prog.consts.push_back(make_int(3));
    prog.code.push_back(Instr{.op = Op::kJump, .a = 3});  // lands on kWaitFor
    prog.code.insert(prog.code.end(), seq.begin(), seq.end());
    prog.entry = 0;
    prog.num_regs = 1;
    blocked.processes.push_back(std::move(prog));
    blocked.total_instructions = blocked.processes[0].code.size();
  }
  optimize(blocked, OptLevel::kFull);
  EXPECT_EQ(blocked.processes[0].code.size(), 5u) << "rewrite must be blocked";
  EXPECT_EQ(blocked.opt.patterns_matched, 0u);
  EXPECT_EQ(blocked.opt.instructions_eliminated, 0u);
  EXPECT_EQ(blocked.processes[0].code[0].a, 3) << "target untouched";

  // Control case: the identical sequence without the incoming jump is
  // rewritten, and the entry pc survives the remap.
  CompiledSystem open;
  {
    ProcProgram prog;
    prog.process_name = "p";
    prog.consts.push_back(make_int(3));
    prog.code = seq;
    prog.entry = 0;
    prog.num_regs = 1;
    open.processes.push_back(std::move(prog));
    open.total_instructions = open.processes[0].code.size();
  }
  optimize(open, OptLevel::kFull);
  ASSERT_EQ(open.processes[0].code.size(), 2u);
  EXPECT_EQ(open.processes[0].code[0].op, Op::kWaitForImm);
  EXPECT_EQ(open.processes[0].code[1].op, Op::kHalt);
  EXPECT_EQ(open.processes[0].entry, 0u);
  EXPECT_EQ(open.opt.instructions_eliminated, 2u);
}

// ---- bulk transfers on protocol-refined systems ---------------------------

/// A system whose single process writes and reads back a remote array —
/// after partitioning + protocol generation every access streams through
/// the narrow bus "FB" word by word, which is the shape the bulk rules
/// recognize.
System make_partitioned_transfer_system() {
  System s("xfer");
  s.add_variable(Variable("V", Type::array(Type::bits(16), 8)));
  Process p;
  p.name = "P0";
  p.locals.emplace_back("ACC", Type::integer(32), Value::integer(1));
  p.locals.emplace_back("TMP", Type::integer(32));
  p.body = {
      for_stmt("i0", lit(0), lit(7),
               {assign(lv_idx("V", var("i0")), add(var("i0"), lit(3)))}),
      for_stmt("i1", lit(0), lit(7),
               {assign("TMP", aref("V", var("i1"))),
                assign("ACC", add(var("ACC"), var("TMP")))}),
  };
  s.add_process(std::move(p));

  partition::ModuleAssignment m1;
  m1.module = "M1";
  m1.processes.push_back("P0");
  partition::ModuleAssignment m2;
  m2.module = "M2";
  m2.variables.push_back("V");
  Status status = partition::apply_partition(s, {m1, m2});
  EXPECT_TRUE(status.is_ok()) << status;
  status = partition::group_all_channels(s, "FB");
  EXPECT_TRUE(status.is_ok()) << status;
  return s;
}

System refine(const System& s, ProtocolKind kind, int bus_width) {
  System refined = s.clone("refined");
  refined.find_bus("FB")->width = bus_width;
  protocol::ProtocolGenOptions options;
  options.protocol = kind;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  const Status status = generator.generate_all(refined);
  EXPECT_TRUE(status.is_ok()) << status;
  return refined;
}

/// Compile `system` the way a real run does — through Interpreter::setup,
/// which declares the signals and bus locks on the kernel before the
/// bytecode compiler interns them (a bare compile() would lower every
/// signal reference to a lazy kTrap instead). Returns a copy of the
/// artifact compiled at the given IFSYN_SIM_OPT setting.
CompiledSystem compile_via_setup(const System& system, const char* opt) {
  ScopedSimOpt scoped(opt);
  Kernel kernel;
  Interpreter interp(system, kernel, Engine::kVm);
  const Status status = interp.setup();
  EXPECT_TRUE(status.is_ok()) << status;
  return interp.vm()->compiled();
}

TEST(OptimizerTest, RecognizesBulkTransferLoops) {
  const System base = make_partitioned_transfer_system();
  for (const ProtocolKind kind :
       {ProtocolKind::kFullHandshake, ProtocolKind::kHalfHandshake}) {
    const System refined = refine(base, kind, 5);

    const CompiledSystem ref = compile_via_setup(refined, "0");
    EXPECT_EQ(count_op(ref, Op::kBulkSend), 0);
    EXPECT_EQ(count_op(ref, Op::kBulkRecv), 0);

    const CompiledSystem opt = compile_via_setup(refined, "1");
    EXPECT_GE(count_op(opt, Op::kBulkSend), 1)
        << protocol_kind_name(kind)
        << ": generated Send word loops should collapse to kBulkSend";
    EXPECT_GE(count_op(opt, Op::kBulkRecv), 1)
        << protocol_kind_name(kind)
        << ": generated Receive word loops should collapse to kBulkRecv";
    EXPECT_GT(opt.opt.patterns_matched, 0u);
    EXPECT_LT(opt.optimized_instructions, opt.total_instructions);
  }
}

// ---- byte-identity across opt levels --------------------------------------

TEST(OptimizerTest, ExecutedOpsAndResultsIdenticalAcrossLevels) {
  const System base = make_partitioned_transfer_system();
  const System refined = refine(base, ProtocolKind::kHalfHandshake, 5);

  obs::MetricsRegistry ref_metrics;
  SimulationRun ref = [&] {
    ScopedSimOpt off("0");
    return simulate(refined, 10'000'000, false,
                    obs::ObsContext{&ref_metrics, nullptr}, Engine::kVm);
  }();
  obs::MetricsRegistry opt_metrics;
  SimulationRun opt = [&] {
    ScopedSimOpt on("1");
    return simulate(refined, 10'000'000, false,
                    obs::ObsContext{&opt_metrics, nullptr}, Engine::kVm);
  }();

  ASSERT_TRUE(ref.result.status.is_ok()) << ref.result.status;
  ASSERT_TRUE(opt.result.status.is_ok()) << opt.result.status;
  EXPECT_EQ(ref.result.end_time, opt.result.end_time);
  for (const auto& v : refined.variables()) {
    EXPECT_EQ(ref.interpreter->value_of(v->name),
              opt.interpreter->value_of(v->name))
        << "variable " << v->name;
  }

  const auto ref_snap = ref_metrics.snapshot();
  const auto opt_snap = opt_metrics.snapshot();
  const auto* ref_ops = ref_snap.find("sim.vm.executed_ops");
  const auto* opt_ops = opt_snap.find("sim.vm.executed_ops");
  ASSERT_NE(ref_ops, nullptr);
  ASSERT_NE(opt_ops, nullptr);
  EXPECT_GT(ref_ops->counter, 0u);
  EXPECT_EQ(ref_ops->counter, opt_ops->counter)
      << "superinstruction weights must keep executed_ops byte-identical";
  const auto* ref_size = ref_snap.find("sim.vm.compiled_instructions");
  const auto* opt_size = opt_snap.find("sim.vm.compiled_instructions");
  ASSERT_NE(ref_size, nullptr);
  ASSERT_NE(opt_size, nullptr);
  EXPECT_EQ(ref_size->counter, opt_size->counter)
      << "deterministic compile-size metric must not depend on opt level";

  ASSERT_NE(ref_snap.find("sim.vm.opt.level"), nullptr);
  EXPECT_EQ(ref_snap.find("sim.vm.opt.level")->gauge, 0);
  ASSERT_NE(opt_snap.find("sim.vm.opt.level"), nullptr);
  EXPECT_EQ(opt_snap.find("sim.vm.opt.level")->gauge, 1);
  ASSERT_NE(opt_snap.find("sim.vm.opt.patterns_matched"), nullptr);
  EXPECT_GT(opt_snap.find("sim.vm.opt.patterns_matched")->counter, 0u);
  EXPECT_EQ(ref_snap.find("sim.vm.opt.patterns_matched")->counter, 0u);
  ASSERT_NE(opt_snap.find("sim.vm.opt.bulk_ops"), nullptr);
  EXPECT_GT(opt_snap.find("sim.vm.opt.bulk_ops")->counter, 0u)
      << "the transfer workload must actually execute bulk dispatches";

  // The counters are scrapeable through the generic prometheus
  // renderer, level gauge included.
  const std::string prom = opt_snap.to_prometheus_text();
  EXPECT_NE(prom.find("ifsyn_sim_vm_opt_level 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ifsyn_sim_vm_opt_bulk_ops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ifsyn_sim_vm_opt_patterns_matched_total"),
            std::string::npos);
}

}  // namespace
}  // namespace ifsyn::sim::bytecode
