// Trace-mined conformance (src/check/trace_miner): clean verdicts on
// every refined system the generator produces -- under every execution
// engine -- and a guaranteed, correctly-classified disagreement for each
// seeded waveform mutation in the bug class the miner exists to catch.
// Parallels tests/check/checker_test.cpp's mutation negatives: there the
// *procedures* are mutated and the static checker must object; here the
// mutant actually runs and the mined trace is diffed against the static
// automaton of the unmutated system.
#include "check/trace_miner.hpp"

#include <gtest/gtest.h>

#include "core/interface_synthesizer.hpp"
#include "obs/metrics.hpp"
#include "protocol/procedure_synthesis.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::check {
namespace {

using namespace spec;
using suite::FlcCalibration;

/// Fig. 3 refined by protocol generation alone (width pinned at 8 by the
/// suite builder). Deterministic: two calls yield identical systems, so
/// mutation tests build it twice -- one copy to mutate and simulate, one
/// to provide the unmutated static automaton to diff against.
System refined_fig3(ProtocolKind protocol = ProtocolKind::kFullHandshake,
                    int fixed_delay_cycles = 2) {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.protocol = protocol;
  options.fixed_delay_cycles = fixed_delay_cycles;
  options.arbitrate = true;  // P and Q are concurrent masters
  protocol::ProtocolGenerator generator(options);
  Status status = generator.generate_all(system);
  EXPECT_TRUE(status.is_ok()) << status;
  return system;
}

ConformanceReport simulate_and_mine(const System& reference,
                                    const System& to_run,
                                    sim::Engine engine = sim::Engine::kVm) {
  sim::SimulationRun run =
      sim::simulate(to_run, /*max_time=*/1'000'000, /*trace=*/true, {},
                    engine);
  EXPECT_TRUE(run.result.status.is_ok()) << run.result.status;
  return mine_and_diff(reference, run.kernel->trace());
}

// ---- clean verdicts ---------------------------------------------------

TEST(TraceMinerTest, Fig3IsCleanUnderEveryProtocol) {
  for (ProtocolKind protocol :
       {ProtocolKind::kFullHandshake, ProtocolKind::kHalfHandshake,
        ProtocolKind::kFixedDelay, ProtocolKind::kHardwiredPort}) {
    System system = refined_fig3(protocol, 3);
    const ConformanceReport report = simulate_and_mine(system, system);
    EXPECT_TRUE(report.clean())
        << protocol_kind_name(protocol) << ":\n" << report.to_string();
    EXPECT_TRUE(report.skipped.empty())
        << protocol_kind_name(protocol) << ":\n" << report.to_string();
    // Fig. 3 performs four accesses: P writes X, reads X, writes MEM;
    // Q writes MEM. Every one must be mined, whatever the protocol.
    EXPECT_EQ(report.transactions_mined, 4) << protocol_kind_name(protocol);
    EXPECT_GT(report.edges_checked, 0);
  }
}

TEST(TraceMinerTest, Fig3IsCleanUnderEveryEngine) {
  System system = refined_fig3();
  for (sim::Engine engine :
       {sim::Engine::kVm, sim::Engine::kAst, sim::Engine::kNative}) {
    const ConformanceReport report =
        simulate_and_mine(system, system, engine);
    EXPECT_TRUE(report.clean())
        << sim::engine_name(engine) << ":\n" << report.to_string();
    EXPECT_EQ(report.transactions_mined, 4) << sim::engine_name(engine);
  }
}

TEST(TraceMinerTest, SynthesizedSuiteSystemsAreClean) {
  struct Case {
    const char* name;
    System (*build)();
    bool arbitrate;
  };
  // All three need arbitration: each has two or more master processes
  // on the shared bus, and the miner (correctly) refuses to serialize
  // an un-arbitrated multi-master lane -- see the skip test below.
  const Case cases[] = {
      {"flc_kernel", suite::make_flc_kernel, true},
      {"answering_machine", suite::make_answering_machine, true},
      {"ethernet_coprocessor", suite::make_ethernet_coprocessor, true},
  };
  for (const Case& c : cases) {
    System system = c.build();
    core::SynthesisOptions options;
    options.arbitrate = c.arbitrate;
    if (std::string(c.name) == "flc_kernel") {
      options.compute_cycles_override = {
          {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
          {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
      };
    }
    core::InterfaceSynthesizer synth(options);
    ASSERT_TRUE(synth.run(system).is_ok()) << c.name;

    sim::SimulationRun run =
        sim::simulate(system, /*max_time=*/10'000'000, /*trace=*/true);
    ASSERT_TRUE(run.result.status.is_ok()) << c.name << ": "
                                           << run.result.status;
    const ConformanceReport report =
        mine_and_diff(system, run.kernel->trace());
    EXPECT_TRUE(report.clean()) << c.name << ":\n" << report.to_string();
    EXPECT_GT(report.transactions_mined, 0) << c.name;
  }
}

// Un-arbitrated fig3 has two concurrent masters whose transactions may
// interleave on the shared record; the miner must decline (skip), not
// guess and emit bogus disagreements.
TEST(TraceMinerTest, UnarbitratedMultiMasterBusIsSkippedNotGuessed) {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.arbitrate = false;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());

  const ConformanceReport report = simulate_and_mine(system, system);
  EXPECT_TRUE(report.clean()) << report.to_string();
  ASSERT_EQ(report.skipped.size(), 1u) << report.to_string();
  EXPECT_EQ(report.skipped[0].bus, "B");
  EXPECT_EQ(report.transactions_mined, 0);
}

// ---- seeded mutation 1: dropped DONE edge -----------------------------

Block strip_assign(const Block& block, const std::string& field,
                   std::int64_t value, int* removed) {
  Block out;
  for (const StmtPtr& stmt : block) {
    if (const auto* sa = stmt->as<SignalAssign>()) {
      const auto* il = sa->value->as<IntLit>();
      if (sa->field == field && il && il->value == value) {
        ++*removed;
        continue;
      }
    }
    if (const auto* fs = stmt->as<ForStmt>()) {
      out.push_back(for_stmt(fs->var, fs->from, fs->to,
                             strip_assign(fs->body, field, value, removed)));
      continue;
    }
    out.push_back(stmt);
  }
  return out;
}

// The dynamic twin of checker_test's DroppedDoneWaitDeadlocks: there the
// requester's DONE wait is dropped and the *static* composition must
// deadlock; here the defect family's terminating form runs for real.
// (Dropping the server's START=0 wait instead livelocks the kernel --
// wait_until is level-sensitive, so the serve loop never suspends and
// simulation yields no trace to mine; the static checker owns that
// variant.) Dropping the server's closing `DONE <= 0` leaves the
// acknowledge wire stuck high: the handshake's falling DONE edge the
// automaton promises never reaches the trace.
TEST(TraceMinerTest, DroppedDoneEdgeIsMissingEvent) {
  const System reference = refined_fig3();
  System mutant = refined_fig3();

  const Channel* ch0 = mutant.find_channel("CH0");
  ASSERT_NE(ch0, nullptr);
  // Tests may mutate generated procedures to seed defects; the bodies are
  // not semantically const, System just exposes no mutating lookup.
  auto* serve = const_cast<Procedure*>(
      mutant.find_procedure(protocol::serve_proc_name(*ch0)));
  ASSERT_NE(serve, nullptr);
  int removed = 0;
  serve->body = strip_assign(serve->body, "DONE", 0, &removed);
  ASSERT_GT(removed, 0) << "mutation found no DONE <= 0 to drop";

  sim::SimulationRun run = sim::simulate(mutant, 100'000, /*trace=*/true);
  const ConformanceReport report =
      mine_and_diff(reference, run.kernel->trace());
  ASSERT_FALSE(report.clean()) << "mutant trace passed conformance";
  const Disagreement& d = report.disagreements[0];
  EXPECT_EQ(d.kind, DisagreementKind::kMissingEvent) << d.to_string();
  EXPECT_EQ(d.bus, "B");
  EXPECT_EQ(d.signal, "B.DONE") << d.to_string();
  EXPECT_FALSE(d.channel.empty());
  EXPECT_NE(d.detail.find("DONE"), std::string::npos) << d.to_string();
}

// ---- seeded mutation 2: reordered strobe edge -------------------------

Block swap_data_before_strobe(const Block& block, int* swapped) {
  Block out;
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (i + 1 < block.size()) {
      const auto* a = block[i]->as<SignalAssign>();
      const auto* b = block[i + 1]->as<SignalAssign>();
      if (a && b && a->field == "DATA" && b->field == "START") {
        out.push_back(block[i + 1]);
        out.push_back(block[i]);
        ++i;
        ++*swapped;
        continue;
      }
    }
    if (const auto* fs = block[i]->as<ForStmt>()) {
      out.push_back(for_stmt(fs->var, fs->from, fs->to,
                             swap_data_before_strobe(fs->body, swapped)));
      continue;
    }
    out.push_back(block[i]);
  }
  return out;
}

// Swapping `DATA <= word` and `START <= parity` commits the data word
// *after* the strobe edge that announces it (trace order within a delta
// is commit-schedule order), which the miner must call out as a
// reordered edge, not as extra data.
TEST(TraceMinerTest, ReorderedStrobeEdgeIsReorderedEdge) {
  const System reference = refined_fig3(ProtocolKind::kHalfHandshake);
  System mutant = refined_fig3(ProtocolKind::kHalfHandshake);

  const Channel* ch0 = mutant.find_channel("CH0");
  ASSERT_NE(ch0, nullptr);
  auto* send = const_cast<Procedure*>(
      mutant.find_procedure(protocol::requester_proc_name(*ch0)));
  ASSERT_NE(send, nullptr);
  int swapped = 0;
  send->body = swap_data_before_strobe(send->body, &swapped);
  ASSERT_GT(swapped, 0) << "mutation found no DATA/START pair to swap";

  sim::SimulationRun run = sim::simulate(mutant, 100'000, /*trace=*/true);
  const ConformanceReport report =
      mine_and_diff(reference, run.kernel->trace());
  ASSERT_FALSE(report.clean()) << "mutant trace passed conformance";
  const Disagreement& d = report.disagreements[0];
  EXPECT_EQ(d.kind, DisagreementKind::kReorderedEdge) << d.to_string();
  EXPECT_EQ(d.bus, "B");
  EXPECT_EQ(d.signal, "B.DATA") << d.to_string();
  EXPECT_FALSE(d.channel.empty());
}

// ---- seeded mutation 3: +1 delay drift --------------------------------

Block bump_first_wait_for(const Block& block, int* bumped) {
  Block out;
  for (const StmtPtr& stmt : block) {
    if (*bumped == 0) {
      if (const auto* wf = stmt->as<WaitFor>()) {
        if (const auto* il = wf->cycles->as<IntLit>()) {
          out.push_back(wait_for(il->value + 1));
          ++*bumped;
          continue;
        }
      }
      if (const auto* fs = stmt->as<ForStmt>()) {
        out.push_back(for_stmt(fs->var, fs->from, fs->to,
                               bump_first_wait_for(fs->body, bumped)));
        continue;
      }
    }
    out.push_back(stmt);
  }
  return out;
}

// Stretching the sender's per-word hold by one cycle leaves every edge
// and its order intact but shifts the second word's commit instant: the
// classic calibration bug the kDelayDrift class exists for.
TEST(TraceMinerTest, StretchedHoldIsDelayDrift) {
  const System reference =
      refined_fig3(ProtocolKind::kFixedDelay, /*fixed_delay_cycles=*/2);
  System mutant =
      refined_fig3(ProtocolKind::kFixedDelay, /*fixed_delay_cycles=*/2);

  const Channel* ch0 = mutant.find_channel("CH0");
  ASSERT_NE(ch0, nullptr);
  auto* send = const_cast<Procedure*>(
      mutant.find_procedure(protocol::requester_proc_name(*ch0)));
  ASSERT_NE(send, nullptr);
  int bumped = 0;
  send->body = bump_first_wait_for(send->body, &bumped);
  ASSERT_EQ(bumped, 1) << "mutation found no wait_for to stretch";

  sim::SimulationRun run = sim::simulate(mutant, 100'000, /*trace=*/true);
  const ConformanceReport report =
      mine_and_diff(reference, run.kernel->trace());
  ASSERT_FALSE(report.clean()) << "mutant trace passed conformance";
  const Disagreement& d = report.disagreements[0];
  EXPECT_EQ(d.kind, DisagreementKind::kDelayDrift) << d.to_string();
  EXPECT_EQ(d.bus, "B");
  EXPECT_FALSE(d.channel.empty());
  EXPECT_NE(d.detail.find("statically expected"), std::string::npos)
      << d.to_string();
}

// ---- metrics ----------------------------------------------------------

TEST(TraceMinerTest, ExportsConformMetrics) {
  System system = refined_fig3();
  sim::SimulationRun run = sim::simulate(system, 1'000'000, /*trace=*/true);
  ASSERT_TRUE(run.result.status.is_ok());

  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  obs.metrics = &registry;
  const ConformanceReport report =
      mine_and_diff(system, run.kernel->trace(), obs);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(registry.counter("check.conform.transactions").value(), 4u);
  EXPECT_GT(registry.counter("check.conform.edges").value(), 0u);
  EXPECT_EQ(registry.counter("check.conform.disagreements").value(), 0u);
}

}  // namespace
}  // namespace ifsyn::check
