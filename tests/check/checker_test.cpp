// Static protocol checker (src/check): clean verdicts on everything the
// generator produces, and a guaranteed diagnostic for each seeded
// mutation in the bug class the checker exists to catch.
#include "check/checker.hpp"

#include <gtest/gtest.h>

#include "check/protocol_fsm.hpp"
#include "core/interface_synthesizer.hpp"
#include "obs/metrics.hpp"
#include "protocol/procedure_synthesis.hpp"
#include "protocol/protocol_generator.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::check {
namespace {

using namespace spec;
using suite::FlcCalibration;

bool has_code(const CheckReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

/// Fig. 3 system refined by protocol generation alone (width is pinned
/// at 8 by the suite builder, so bus generation is not needed).
System refined_fig3(ProtocolKind protocol = ProtocolKind::kFullHandshake,
                    int fixed_delay_cycles = 2) {
  System system = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.protocol = protocol;
  options.fixed_delay_cycles = fixed_delay_cycles;
  options.arbitrate = true;  // P and Q are concurrent masters
  protocol::ProtocolGenerator generator(options);
  Status status = generator.generate_all(system);
  EXPECT_TRUE(status.is_ok()) << status;
  return system;
}

// ---- clean verdicts ---------------------------------------------------

TEST(CheckerTest, Fig3IsCleanUnderEveryProtocol) {
  for (ProtocolKind protocol :
       {ProtocolKind::kFullHandshake, ProtocolKind::kHalfHandshake,
        ProtocolKind::kFixedDelay, ProtocolKind::kHardwiredPort}) {
    System system = refined_fig3(protocol, 3);
    const CheckReport report = run_checks(system);
    EXPECT_TRUE(report.clean())
        << protocol_kind_name(protocol) << ":\n" << report.to_string();
  }
}

TEST(CheckerTest, SynthesizedSuiteSystemsAreClean) {
  struct Case {
    const char* name;
    System (*build)();
    bool arbitrate;
  };
  const Case cases[] = {
      {"flc_kernel", suite::make_flc_kernel, false},
      {"answering_machine", suite::make_answering_machine, true},
      {"ethernet_coprocessor", suite::make_ethernet_coprocessor, true},
  };
  for (const Case& c : cases) {
    System system = c.build();
    core::SynthesisOptions options;
    options.arbitrate = c.arbitrate;
    if (std::string(c.name) == "flc_kernel") {
      options.compute_cycles_override = {
          {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
          {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
      };
    }
    // Snapshot compute cycles before synthesis rewrites the process
    // bodies the default compute model reads (see snapshot_compute_cycles).
    const std::map<std::string, long long> compute_snapshot =
        snapshot_compute_cycles(system, options.compute_cycles_override);

    // The synthesizer's own P6 gate runs the checker; success here
    // already means "clean". Re-run explicitly for the report assert.
    core::InterfaceSynthesizer synth(options);
    Result<core::SynthesisReport> report = synth.run(system);
    ASSERT_TRUE(report.is_ok()) << c.name << ": " << report.status();

    CheckOptions check_options;
    check_options.compute_cycles_override = compute_snapshot;
    const CheckReport check_report = run_checks(system, check_options);
    EXPECT_TRUE(check_report.clean())
        << c.name << ":\n" << check_report.to_string();
  }
}

// ---- seeded mutation 1: duplicate channel ID --------------------------

TEST(CheckerTest, DuplicateChannelIdIsFlagged) {
  System system = refined_fig3();
  ASSERT_TRUE(run_checks(system).clean());
  system.find_channel("CH1")->id = system.find_channel("CH0")->id;
  const CheckReport report = run_checks(system);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "structural.duplicate_id"))
      << report.to_string();
}

// ---- seeded mutation 2: fixed-delay default drift ---------------------

TEST(CheckerTest, FixedDelayDefaultDriftIsFlagged) {
  System system = refined_fig3(ProtocolKind::kFixedDelay,
                               /*fixed_delay_cycles=*/5);
  ASSERT_TRUE(run_checks(system).clean());
  // Reintroduce the old bug's effect: the bus record claims the default
  // delay while the generated procedures hold each word for 5 cycles.
  system.find_bus("B")->fixed_delay_cycles = 2;
  const CheckReport report = run_checks(system);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "fsm.hold_cycles")) << report.to_string();
}

// ---- seeded mutation 3: dropped DONE wait -----------------------------

bool mentions_done(const Expr& expr) {
  if (const auto* s = expr.as<SignalRef>()) return s->field == "DONE";
  if (const auto* u = expr.as<UnaryExpr>()) return mentions_done(*u->operand);
  if (const auto* b = expr.as<BinaryExpr>()) {
    return mentions_done(*b->lhs) || mentions_done(*b->rhs);
  }
  return false;
}

Block strip_done_waits(const Block& block, int* removed) {
  Block out;
  for (const StmtPtr& stmt : block) {
    if (const auto* wu = stmt->as<WaitUntil>()) {
      if (mentions_done(*wu->cond)) {
        ++*removed;
        continue;
      }
    }
    if (const auto* fs = stmt->as<ForStmt>()) {
      out.push_back(
          for_stmt(fs->var, fs->from, fs->to,
                   strip_done_waits(fs->body, removed)));
      continue;
    }
    out.push_back(stmt);
  }
  return out;
}

TEST(CheckerTest, DroppedDoneWaitDeadlocks) {
  System system = refined_fig3();
  ASSERT_TRUE(run_checks(system).clean());

  const Channel* ch0 = system.find_channel("CH0");
  ASSERT_NE(ch0, nullptr);
  // Tests may mutate generated procedures to seed defects; the bodies are
  // not semantically const, System just exposes no mutating lookup.
  auto* send = const_cast<Procedure*>(
      system.find_procedure(protocol::requester_proc_name(*ch0)));
  ASSERT_NE(send, nullptr);
  int removed = 0;
  send->body = strip_done_waits(send->body, &removed);
  ASSERT_GT(removed, 0) << "mutation found no DONE wait to drop";

  const CheckReport report = run_checks(system);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "fsm.deadlock")) << report.to_string();
}

// ---- rate re-check ----------------------------------------------------

// A pinned width below the Eq. 1 floor is a caller decision (width
// sweeps and the paper's pinned illustrative examples depend on it), so
// the rate pass must stay silent on it.
TEST(CheckerTest, PinnedWidthIsExemptFromRateCheck) {
  System system = suite::make_flc_kernel();
  system.find_bus("B")->width = 1;  // far below the Eq. 1 floor
  core::SynthesisOptions options;
  options.compute_cycles_override = {
      {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
  };
  const std::map<std::string, long long> compute_snapshot =
      snapshot_compute_cycles(system, options.compute_cycles_override);
  core::InterfaceSynthesizer synth(options);  // gate on: must stay clean
  ASSERT_TRUE(synth.run(system).is_ok());

  CheckOptions check_options;
  check_options.compute_cycles_override = compute_snapshot;
  const CheckReport report = run_checks(system, check_options);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// A *generator-selected* width that violates Eq. 1 is exactly the
// protocol-blind drift this subsystem exists to catch. The generator
// cannot be made to select one through its public API (that is the
// point), so shrink the width it chose after the fact and re-run the
// rate pass alone.
TEST(CheckerTest, GeneratorSelectedInfeasibleWidthWarns) {
  System system = suite::make_flc_kernel();
  core::SynthesisOptions options;
  options.compute_cycles_override = {
      {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
  };
  const std::map<std::string, long long> compute_snapshot =
      snapshot_compute_cycles(system, options.compute_cycles_override);
  core::InterfaceSynthesizer synth(options);
  ASSERT_TRUE(synth.run(system).is_ok());

  BusGroup* bus = system.find_bus("B");
  ASSERT_TRUE(bus->width_from_generator);
  bus->width = 1;

  CheckOptions check_options;
  check_options.structural = false;    // width no longer matches signals;
  check_options.protocol_fsm = false;  // isolate the rate pass
  check_options.compute_cycles_override = compute_snapshot;
  const CheckReport report = run_checks(system, check_options);
  EXPECT_EQ(report.errors(), 0) << report.to_string();
  EXPECT_GT(report.warnings(), 0);
  EXPECT_TRUE(has_code(report, "rate.infeasible")) << report.to_string();
}

// ---- metrics ----------------------------------------------------------

TEST(CheckerTest, ExportsCheckMetrics) {
  System system = refined_fig3();
  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  obs.metrics = &registry;
  const CheckReport report = run_checks(system, {}, obs);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(registry.counter("check.buses_checked").value(), 1u);
  EXPECT_EQ(registry.counter("check.channels_checked").value(), 4u);
  EXPECT_EQ(registry.counter("check.fsm_compositions").value(), 4u);
  EXPECT_GT(registry.counter("check.fsm_states_explored").value(), 0u);
  EXPECT_EQ(registry.counter("check.errors").value(), 0u);
}

}  // namespace
}  // namespace ifsyn::check
