// Bus generation (Sec. 3): width range, feasibility (Eq. 1), cost-based
// selection -- including the exact Fig. 8 design points -- and the
// infeasible-group splitting fallback.
#include "bus/bus_generator.hpp"

#include <gtest/gtest.h>

#include "spec/analysis.hpp"
#include "suite/flc.hpp"

namespace ifsyn::bus {
namespace {

using spec::ProtocolKind;
using suite::FlcCalibration;

struct FlcFixture {
  spec::System system;
  estimate::PerformanceEstimator estimator;
  BusGenerator generator;

  FlcFixture()
      : system(suite::make_flc_kernel()),
        estimator(system),
        generator(system, estimator) {
    EXPECT_TRUE(spec::annotate_channel_accesses(system).is_ok());
    estimator.set_compute_cycles("EVAL_R3",
                                 FlcCalibration::kEvalR3ComputeCycles);
    estimator.set_compute_cycles("CONV_R2",
                                 FlcCalibration::kConvR2ComputeCycles);
  }

  const spec::BusGroup& bus() { return *system.find_bus("B"); }
};

TEST(BusGeneratorTest, WidthRangeIsOneToLargestMessage) {
  FlcFixture f;
  auto [lo, hi] = f.generator.width_range(f.bus(), {});
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, FlcCalibration::kMessageBits);  // 23
}

TEST(BusGeneratorTest, WidthRangeOverride) {
  FlcFixture f;
  BusGenOptions options;
  options.min_width = 4;
  options.max_width = 16;
  auto [lo, hi] = f.generator.width_range(f.bus(), options);
  EXPECT_EQ(lo, 4);
  EXPECT_EQ(hi, 16);
}

TEST(BusGeneratorTest, EvaluateWidthComputesEq1Sides) {
  FlcFixture f;
  WidthEvaluation eval = f.generator.evaluate_width(f.bus(), 20, {});
  EXPECT_DOUBLE_EQ(eval.bus_rate, 10.0);  // Eq. 2
  ASSERT_EQ(eval.channel_rates.size(), 2u);
  EXPECT_GT(eval.sum_average_rates, 0.0);
  EXPECT_TRUE(eval.feasible);
}

TEST(BusGeneratorTest, NarrowWidthsAreInfeasible) {
  // At width 1 the bus moves 0.5 bits/clock but the two channels demand
  // ~0.9 -- Eq. 1 fails, exactly the "progressively delay the processes"
  // situation of Sec. 3.
  FlcFixture f;
  WidthEvaluation eval = f.generator.evaluate_width(f.bus(), 1, {});
  EXPECT_FALSE(eval.feasible);
  EXPECT_LT(eval.bus_rate, eval.sum_average_rates);
}

TEST(BusGeneratorTest, UnconstrainedPicksNarrowestFeasible) {
  FlcFixture f;
  Result<BusGenResult> result = f.generator.generate(f.bus(), {});
  ASSERT_TRUE(result.is_ok()) << result.status();
  // With no constraints every feasible width costs 0; the tiebreak keeps
  // interconnect minimal.
  const BusGenResult& r = *result;
  EXPECT_GT(r.selected_width, 1);
  for (const WidthEvaluation& eval : r.evaluations) {
    if (eval.width < r.selected_width) {
      EXPECT_FALSE(eval.feasible);
    }
  }
  EXPECT_EQ(r.total_channel_bits, 46);
}

// ---- The three Fig. 8 design points ----

TEST(BusGeneratorTest, Fig8DesignA) {
  FlcFixture f;
  BusGenOptions options;
  options.constraints = {min_peak_rate("ch2", 10, 10)};
  Result<BusGenResult> result = f.generator.generate(f.bus(), options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->selected_width, 20);
  EXPECT_DOUBLE_EQ(result->selected_bus_rate, 10.0);
  EXPECT_NEAR(result->interconnect_reduction, 1.0 - 20.0 / 46.0, 1e-9);
}

TEST(BusGeneratorTest, Fig8DesignB) {
  FlcFixture f;
  BusGenOptions options;
  options.constraints = {
      min_peak_rate("ch2", 10, 2),
      min_bus_width(14, 1),
      max_bus_width(17, 1),
  };
  Result<BusGenResult> result = f.generator.generate(f.bus(), options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->selected_width, 18);
  EXPECT_DOUBLE_EQ(result->selected_bus_rate, 9.0);
}

TEST(BusGeneratorTest, Fig8DesignC) {
  FlcFixture f;
  BusGenOptions options;
  options.constraints = {
      min_peak_rate("ch2", 10, 1),
      min_bus_width(16, 5),
      max_bus_width(16, 5),
  };
  Result<BusGenResult> result = f.generator.generate(f.bus(), options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->selected_width, 16);
  EXPECT_DOUBLE_EQ(result->selected_bus_rate, 8.0);
}

TEST(BusGeneratorTest, EvaluationsCoverWholeRange) {
  FlcFixture f;
  Result<BusGenResult> result = f.generator.generate(f.bus(), {});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->evaluations.size(), 23u);
  EXPECT_NE(result->evaluation_for(20), nullptr);
  EXPECT_EQ(result->evaluation_for(99), nullptr);
}

TEST(BusGeneratorTest, SelectedWidthIsMinCostAmongFeasible) {
  // Property: no feasible evaluation has strictly lower cost than the
  // winner; equal-cost ties go to the narrower width.
  FlcFixture f;
  BusGenOptions options;
  options.constraints = {min_peak_rate("ch2", 10, 2), max_bus_width(17, 1),
                         min_bus_width(14, 1)};
  Result<BusGenResult> result = f.generator.generate(f.bus(), options);
  ASSERT_TRUE(result.is_ok());
  const double winner_cost = result->selected_cost;
  for (const WidthEvaluation& eval : result->evaluations) {
    if (!eval.feasible) continue;
    EXPECT_GE(eval.cost, winner_cost) << "width " << eval.width;
    if (eval.cost == winner_cost) {
      EXPECT_GE(eval.width, result->selected_width);
    }
  }
}

TEST(BusGeneratorTest, MissingAccessCountsIsFailedPrecondition) {
  spec::System system = suite::make_flc_kernel();  // not annotated
  for (const auto& ch : system.channels()) ch->accesses = 0;
  estimate::PerformanceEstimator estimator(system);
  BusGenerator generator(system, estimator);
  Result<BusGenResult> result = generator.generate(*system.find_bus("B"), {});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BusGeneratorTest, OverConstrainedRangeIsInfeasible) {
  FlcFixture f;
  BusGenOptions options;
  options.max_width = 2;  // Eq. 1 cannot hold at widths 1-2
  Result<BusGenResult> result = f.generator.generate(f.bus(), options);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(BusGeneratorTest, SplitGroupSeparatesHotChannels) {
  // Force infeasibility by capping the width, then split: each FLC
  // channel alone is feasible at width <= 2?  No -- use the real driver:
  // an infeasible group must split into singletons that are feasible at
  // their full width range.
  FlcFixture f;
  BusGenOptions options;
  options.max_width = 4;  // group infeasible at <=4 (Eq. 1 fails)
  Result<BusGenResult> whole = f.generator.generate(f.bus(), options);
  ASSERT_EQ(whole.status().code(), StatusCode::kInfeasible);

  // Splitting with the full range available: two singleton buses.
  auto split = f.generator.split_group(f.bus(), BusGenOptions{});
  ASSERT_TRUE(split.is_ok()) << split.status();
  // Both channels fit on one bus at full range, so the greedy packer
  // keeps them together.
  ASSERT_EQ(split->size(), 1u);
  EXPECT_EQ((*split)[0].size(), 2u);
}

TEST(BusGeneratorTest, SplitGroupRespectsRestrictedRange) {
  // At widths <= 8 the two channels together violate Eq. 1 (their demand
  // of ~4.2 bits/clock exceeds the 4 bits/clock bus rate), but each alone
  // fits comfortably -- so the splitter must produce two buses.
  FlcFixture f;
  BusGenOptions options;
  options.max_width = 8;
  for (int w = 1; w <= 8; ++w) {
    EXPECT_FALSE(f.generator.evaluate_width(f.bus(), w, options).feasible);
  }
  auto split = f.generator.split_group(f.bus(), options);
  ASSERT_TRUE(split.is_ok()) << split.status();
  ASSERT_EQ(split->size(), 2u);
  EXPECT_EQ((*split)[0].size(), 1u);
  EXPECT_EQ((*split)[1].size(), 1u);
}

}  // namespace
}  // namespace ifsyn::bus
