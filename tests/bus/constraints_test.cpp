// Constraint violations and the weighted-squared-violation cost function
// (paper Sec. 3 step 4).
#include "bus/constraints.hpp"

#include <gtest/gtest.h>

namespace ifsyn::bus {
namespace {

std::vector<estimate::ChannelRates> rates_fixture() {
  return {
      estimate::ChannelRates{"ch1", 2.3, 10.0},
      estimate::ChannelRates{"ch2", 2.9, 8.0},
  };
}

TEST(ConstraintsTest, WidthViolations) {
  auto rates = rates_fixture();
  EXPECT_DOUBLE_EQ(violation(min_bus_width(14, 1), 10, rates), 4.0);
  EXPECT_DOUBLE_EQ(violation(min_bus_width(14, 1), 14, rates), 0.0);
  EXPECT_DOUBLE_EQ(violation(min_bus_width(14, 1), 20, rates), 0.0);
  EXPECT_DOUBLE_EQ(violation(max_bus_width(16, 1), 18, rates), 2.0);
  EXPECT_DOUBLE_EQ(violation(max_bus_width(16, 1), 16, rates), 0.0);
}

TEST(ConstraintsTest, RateViolations) {
  auto rates = rates_fixture();
  EXPECT_DOUBLE_EQ(violation(min_peak_rate("ch2", 10, 1), 0, rates), 2.0);
  EXPECT_DOUBLE_EQ(violation(min_peak_rate("ch1", 10, 1), 0, rates), 0.0);
  EXPECT_DOUBLE_EQ(violation(max_peak_rate("ch1", 9, 1), 0, rates), 1.0);
  EXPECT_DOUBLE_EQ(violation(min_ave_rate("ch1", 3.0, 1), 0, rates), 0.7);
  EXPECT_NEAR(violation(max_ave_rate("ch2", 2.5, 1), 0, rates), 0.4, 1e-9);
}

TEST(ConstraintsTest, UnknownChannelAsserts) {
  auto rates = rates_fixture();
  EXPECT_THROW(violation(min_peak_rate("ghost", 10, 1), 0, rates),
               InternalError);
}

TEST(ConstraintsTest, CostIsWeightedSumOfSquares) {
  auto rates = rates_fixture();
  // Fig. 8 design B at width 18 with our inferred constraint set:
  // peak(ch2)=9 -> violation 1 with weight 2; MaxBW 17 -> violation 1
  // with weight 1; MinBW 14 satisfied.
  std::vector<estimate::ChannelRates> at18 = {
      estimate::ChannelRates{"ch1", 2.3, 9.0},
      estimate::ChannelRates{"ch2", 2.9, 9.0},
  };
  std::vector<BusConstraint> constraints = {
      min_peak_rate("ch2", 10, 2),
      min_bus_width(14, 1),
      max_bus_width(17, 1),
  };
  EXPECT_DOUBLE_EQ(implementation_cost(constraints, 18, at18),
                   2 * 1 * 1 + 0 + 1 * 1 * 1);
}

TEST(ConstraintsTest, EmptyConstraintsCostZero) {
  EXPECT_DOUBLE_EQ(implementation_cost({}, 20, rates_fixture()), 0.0);
}

TEST(ConstraintsTest, KindNames) {
  EXPECT_STREQ(constraint_kind_name(ConstraintKind::kMinPeakRate),
               "MinPeakRate");
  EXPECT_STREQ(constraint_kind_name(ConstraintKind::kMaxBusWidth),
               "MaxBusWidth");
}

TEST(ConstraintsTest, FactoriesRecordFields) {
  BusConstraint c = min_peak_rate("ch2", 10, 2.5);
  EXPECT_EQ(c.kind, ConstraintKind::kMinPeakRate);
  EXPECT_EQ(c.channel, "ch2");
  EXPECT_DOUBLE_EQ(c.bound, 10);
  EXPECT_DOUBLE_EQ(c.weight, 2.5);
}

}  // namespace
}  // namespace ifsyn::bus
