// Lane allocation (the paper's Sec. 6 "simultaneous transfers over
// different sets of data and control lines"): planning, budget splitting,
// application to the system, and the actual concurrency win in simulation.
#include "bus/lane_allocator.hpp"

#include <gtest/gtest.h>

#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

namespace ifsyn::bus {
namespace {

using spec::ProtocolKind;

struct Fixture {
  spec::System system;
  estimate::PerformanceEstimator estimator;
  LaneAllocator allocator;

  Fixture()
      : system(suite::make_flc_kernel()),
        estimator(system),
        allocator(system, estimator) {
    EXPECT_TRUE(spec::annotate_channel_accesses(system).is_ok());
    estimator.set_compute_cycles(
        "EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles);
    estimator.set_compute_cycles(
        "CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles);
  }

  const spec::BusGroup& group() { return *system.find_bus("B"); }
};

TEST(LaneAllocatorTest, SingleLaneEqualsPlainBus) {
  Fixture f;
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 16, 1, ProtocolKind::kFullHandshake, 2);
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  ASSERT_EQ(plan->lane_count(), 1);
  EXPECT_EQ(plan->lanes[0].width, 16);
  EXPECT_EQ(plan->lanes[0].channels.size(), 2u);
  // busy = both channels serialized: 128*ceil(23/16)*2 each = 1024.
  EXPECT_EQ(plan->lanes[0].busy_cycles, 2 * 128 * 2 * 2);
  EXPECT_EQ(plan->total_data_lines, 16);
}

TEST(LaneAllocatorTest, TwoLanesSplitBudgetAndRunConcurrently) {
  Fixture f;
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 16, 2, ProtocolKind::kFullHandshake, 2);
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  ASSERT_EQ(plan->lane_count(), 2);
  EXPECT_EQ(plan->lanes[0].width + plan->lanes[1].width, 16);
  EXPECT_EQ(plan->lanes[0].channels.size(), 1u);
  EXPECT_EQ(plan->lanes[1].channels.size(), 1u);
  // Each lane at width 8: 128*3*2 = 768 < the single lane's 1024.
  Result<LanePlan> single =
      f.allocator.plan(f.group(), 16, 1, ProtocolKind::kFullHandshake, 2);
  EXPECT_LT(plan->completion_cycles, single->completion_cycles);
}

TEST(LaneAllocatorTest, AllocateSearchesLaneCounts) {
  Fixture f;
  Result<LanePlan> best =
      f.allocator.allocate(f.group(), 16, 4, ProtocolKind::kFullHandshake, 2);
  ASSERT_TRUE(best.is_ok()) << best.status();
  // With two equal-demand channels, two lanes beat one.
  EXPECT_EQ(best->lane_count(), 2);
  EXPECT_TRUE(best->feasible);
}

TEST(LaneAllocatorTest, WidthCapsAtLargestMessage) {
  Fixture f;
  // Budget 64 for 2 lanes of 23-bit messages: each lane capped at 23.
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 64, 2, ProtocolKind::kFullHandshake, 2);
  ASSERT_TRUE(plan.is_ok());
  for (const Lane& lane : plan->lanes) {
    EXPECT_LE(lane.width, 23);
  }
}

TEST(LaneAllocatorTest, BudgetTooSmallForLaneCount) {
  Fixture f;
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 1, 2, ProtocolKind::kFullHandshake, 2);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(LaneAllocatorTest, MoreLanesThanChannelsRejected) {
  Fixture f;
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 16, 3, ProtocolKind::kFullHandshake, 2);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(LaneAllocatorTest, ApplyRewritesGroups) {
  Fixture f;
  Result<LanePlan> plan =
      f.allocator.plan(f.group(), 16, 2, ProtocolKind::kFullHandshake, 2);
  ASSERT_TRUE(plan.is_ok());
  Result<std::vector<std::string>> names =
      f.allocator.apply(f.system, "B", *plan);
  ASSERT_TRUE(names.is_ok()) << names.status();
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "B");
  EXPECT_EQ((*names)[1], "B_lane1");
  EXPECT_EQ(f.system.find_bus("B")->channel_names.size(), 1u);
  EXPECT_EQ(f.system.find_bus("B_lane1")->channel_names.size(), 1u);
  EXPECT_TRUE(f.system.validate().is_ok());
}

/// A communication-bound system: two producers stream into separate
/// remote arrays back to back (no compute waits), so the bus is the
/// bottleneck and concurrency between lanes is the win.
spec::System make_streaming_system() {
  using namespace spec;
  System s("streams");
  s.add_variable(Variable("A", Type::array(Type::bits(16), 64)));
  s.add_variable(Variable("B2", Type::array(Type::bits(16), 64)));
  for (const char* name : {"P1", "P2"}) {
    Process p;
    p.name = name;
    const std::string target = name == std::string("P1") ? "A" : "B2";
    p.body = {for_stmt("i", lit(0), lit(63),
                       {assign(lv_idx(target, var("i")),
                               add(mul(var("i"), lit(3)), lit(1)))})};
    s.add_process(std::move(p));
  }
  Status status = ifsyn::partition::apply_partition(
      s, {ifsyn::partition::ModuleAssignment{"M1", {"P1", "P2"}, {}},
          ifsyn::partition::ModuleAssignment{"M2", {}, {"A", "B2"}}});
  EXPECT_TRUE(status.is_ok()) << status;
  EXPECT_TRUE(ifsyn::partition::group_all_channels(s, "SB").is_ok());
  return s;
}

TEST(LaneAllocatorTest, TwoLanesBeatOneLaneOnCommBoundWorkload) {
  // Same 16 data lines: one shared (arbitrated) lane serializes the two
  // streams; two 8-bit lanes move them simultaneously -- the paper's
  // "transfer data simultaneously ... utilizing different sets of data
  // and control lines".
  auto run_with_lanes = [](int lane_count) -> std::uint64_t {
    spec::System system = make_streaming_system();
    EXPECT_TRUE(spec::annotate_channel_accesses(system).is_ok());
    estimate::PerformanceEstimator estimator(system);
    LaneAllocator allocator(system, estimator);
    Result<LanePlan> plan = allocator.plan(
        *system.find_bus("SB"), 16, lane_count,
        ProtocolKind::kFullHandshake, 2);
    EXPECT_TRUE(plan.is_ok()) << plan.status();
    Result<std::vector<std::string>> names =
        allocator.apply(system, "SB", *plan);
    EXPECT_TRUE(names.is_ok());

    protocol::ProtocolGenOptions options;
    options.arbitrate = lane_count == 1;  // single lane is shared
    protocol::ProtocolGenerator generator(options);
    EXPECT_TRUE(generator.generate_all(system).is_ok());
    sim::SimulationRun run = sim::simulate(system, 10'000'000);
    EXPECT_TRUE(run.result.status.is_ok()) << run.result.status;
    EXPECT_TRUE(run.result.find("P1")->completed);
    EXPECT_TRUE(run.result.find("P2")->completed);
    // Functional results unchanged either way.
    EXPECT_EQ(run.interpreter->value_of("A").at(63).to_uint(),
              63u * 3 + 1);
    EXPECT_EQ(run.interpreter->value_of("B2").at(63).to_uint(),
              63u * 3 + 1);
    return run.result.end_time;
  };

  const std::uint64_t one_lane = run_with_lanes(1);
  const std::uint64_t two_lanes = run_with_lanes(2);
  // One 16-bit lane serializes 128 messages of 2 words (512 cycles); two
  // 8-bit lanes each move 64 messages of 3 words concurrently (384).
  EXPECT_LT(two_lanes, one_lane);
  EXPECT_EQ(two_lanes, 384u);
  EXPECT_EQ(one_lane, 512u);
}

}  // namespace
}  // namespace ifsyn::bus
