// Channel trace merging (Fig. 2): average rates, FIFO bus schedule,
// per-transfer delays, bounded-lag property under Eq. 1.
#include "bus/channel_trace.hpp"

#include <gtest/gtest.h>

namespace ifsyn::bus {
namespace {

/// The exact traces of Fig. 2: channel A sends two 8-bit items (t=0, 2),
/// channel B sends three 16-bit items (t=0, 1, 3), over a 4-second window.
std::vector<ChannelTrace> fig2_traces() {
  ChannelTrace a;
  a.name = "A";
  a.period = 4;
  a.transfers = {{0, 8, "A1"}, {2, 8, "A2"}};
  ChannelTrace b;
  b.name = "B";
  b.period = 4;
  b.transfers = {{0, 16, "B1"}, {1, 16, "B2"}, {3, 16, "B3"}};
  return {a, b};
}

TEST(ChannelTraceTest, Fig2AverageRates) {
  auto traces = fig2_traces();
  EXPECT_DOUBLE_EQ(traces[0].average_rate(), 4.0);   // (2*8)/4
  EXPECT_DOUBLE_EQ(traces[1].average_rate(), 12.0);  // (3*16)/4
  EXPECT_DOUBLE_EQ(required_bus_rate(traces), 16.0);  // 4 + 12
}

TEST(ChannelTraceTest, Fig2MergeCompletesWithinPeriod) {
  auto traces = fig2_traces();
  Result<MergedSchedule> merged = merge_traces(traces, 16.0);
  ASSERT_TRUE(merged.is_ok()) << merged.status();
  EXPECT_EQ(merged->transfers.size(), 5u);
  // All 64 bits fit in the 4-second window at 16 bits/s.
  EXPECT_LE(merged->makespan, 4.0 + 1e-9);
  // The bus is never idle once started: 64 bits / 16 bps = 4 s busy.
  EXPECT_NEAR(merged->busy_time, 4.0, 1e-9);
  EXPECT_NEAR(merged->utilization, 1.0, 1e-9);
}

TEST(ChannelTraceTest, Fig2B2IsDelayedToOneAndAHalf) {
  // "the data item labeled B2 transferred at t=1 second in the original
  // channel B ... is now transferred on bus AB at t=1.5 seconds."
  auto merged = merge_traces(fig2_traces(), 16.0);
  ASSERT_TRUE(merged.is_ok());
  const ScheduledTransfer* b2 = nullptr;
  for (const auto& t : merged->transfers) {
    if (t.label == "B2") b2 = &t;
  }
  ASSERT_NE(b2, nullptr);
  EXPECT_DOUBLE_EQ(b2->start, 1.5);
  EXPECT_DOUBLE_EQ(b2->delay(), 0.5);
}

TEST(ChannelTraceTest, FifoOrderWithTieBreakByChannelOrder) {
  auto merged = merge_traces(fig2_traces(), 16.0);
  ASSERT_TRUE(merged.is_ok());
  std::vector<std::string> order;
  for (const auto& t : merged->transfers) order.push_back(t.label);
  // A1 and B1 both arrive at t=0; channel A is listed first.
  EXPECT_EQ(order,
            (std::vector<std::string>{"A1", "B1", "B2", "A2", "B3"}));
}

TEST(ChannelTraceTest, SlowerBusAccumulatesDelay) {
  auto merged = merge_traces(fig2_traces(), 8.0);  // below Eq. 1 rate
  ASSERT_TRUE(merged.is_ok());
  EXPECT_GT(merged->makespan, 4.0);
  EXPECT_GT(merged->max_delay, 0.0);
}

TEST(ChannelTraceTest, FasterBusShrinksDelay) {
  auto at16 = merge_traces(fig2_traces(), 16.0);
  auto at32 = merge_traces(fig2_traces(), 32.0);
  ASSERT_TRUE(at16.is_ok());
  ASSERT_TRUE(at32.is_ok());
  EXPECT_LT(at32->total_delay, at16->total_delay);
  EXPECT_LT(at32->makespan, at16->makespan);
}

TEST(ChannelTraceTest, InvalidInputsRejected) {
  EXPECT_EQ(merge_traces(fig2_traces(), 0).status().code(),
            StatusCode::kInvalidArgument);
  ChannelTrace bad;
  bad.name = "bad";
  bad.period = 0;
  EXPECT_EQ(merge_traces({bad}, 16).status().code(),
            StatusCode::kInvalidArgument);
  bad.period = 4;
  bad.transfers = {{0, 0, "empty"}};
  EXPECT_EQ(merge_traces({bad}, 16).status().code(),
            StatusCode::kInvalidArgument);
  bad.transfers = {{-1, 8, "early"}};
  EXPECT_EQ(merge_traces({bad}, 16).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChannelTraceTest, EmptyTraceSetMergesToNothing) {
  auto merged = merge_traces({}, 16.0);
  ASSERT_TRUE(merged.is_ok());
  EXPECT_TRUE(merged->transfers.empty());
  EXPECT_DOUBLE_EQ(merged->makespan, 0.0);
  EXPECT_DOUBLE_EQ(merged->utilization, 0.0);
}

/// Property (the paper's Sec. 2 claim): if the bus rate satisfies Eq. 1,
/// all bits queued in a period drain within (roughly) that period -- the
/// merged bus moves the same bits "in the same amount of time".
class BoundedLagProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundedLagProperty, Eq1RateDrainsThePeriod) {
  const int seed = GetParam();
  std::uint64_t state = 0x1234 + static_cast<std::uint64_t>(seed) * 99991;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };

  std::vector<ChannelTrace> traces;
  const double period = 100.0;
  for (int c = 0; c < 3; ++c) {
    ChannelTrace trace;
    trace.name = "C" + std::to_string(c);
    trace.period = period;
    const int n = 3 + static_cast<int>(next() % 6);
    double t = 0;
    for (int i = 0; i < n; ++i) {
      t += static_cast<double>(next() % 20);
      if (t >= period * 0.8) break;
      trace.transfers.push_back(
          Transfer{t, 8 + static_cast<int>(next() % 24), "x"});
    }
    if (trace.transfers.empty())
      trace.transfers.push_back(Transfer{0, 8, "x"});
    traces.push_back(std::move(trace));
  }

  const double rate = required_bus_rate(traces);
  auto merged = merge_traces(traces, rate);
  ASSERT_TRUE(merged.is_ok());
  // Work conservation: total busy time == total bits / rate.
  long long bits = 0;
  for (const auto& trace : traces) bits += trace.total_bits();
  EXPECT_NEAR(merged->busy_time, bits / rate, 1e-6);
  // Bounded lag: a FIFO non-idling server finishes no later than the last
  // arrival plus the total service demand; with the Eq. 1 rate the total
  // service demand is exactly one period, so the backlog never grows
  // without bound (the paper's "same amount of time" claim).
  EXPECT_LE(merged->makespan, 0.8 * period + bits / rate + 1e-6);
  // And each transfer's completion is causal: never before ready+service.
  for (const auto& t : merged->transfers) {
    EXPECT_GE(t.start + 1e-12, t.ready);
    EXPECT_NEAR(t.end - t.start, t.bits / rate, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedLagProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace ifsyn::bus
