// Tests for the Chrome trace_event sink: event recording, thread-track
// metadata, the schema validator (both accepting our own output and
// rejecting malformed documents), and the RAII Span/ScopedTimer helpers.
#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"

namespace ifsyn::obs {
namespace {

TEST(TraceSinkTest, RecordsAllEventKinds) {
  TraceSink sink;
  sink.duration_event("phase", "synth", 10, 25);
  sink.instant_event("estimate w8", "explore");
  sink.counter_event("queue_depth", 3);
  EXPECT_EQ(sink.event_count(), 3u);

  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 25"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"synth\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(TraceSinkTest, ThreadNamesBecomeMetadataEvents) {
  TraceSink sink;
  sink.set_thread_name("worker 0");
  sink.instant_event("tick", "");
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"worker 0\"}"), std::string::npos);

  std::string error;
  EXPECT_TRUE(validate_trace_json(json, &error)) << error;
}

TEST(TraceSinkTest, DistinctThreadsGetDistinctSmallTids) {
  TraceSink sink;
  const int main_tid = sink.current_tid();
  int worker_tid = -1;
  std::thread worker([&] { worker_tid = sink.current_tid(); });
  worker.join();
  EXPECT_EQ(main_tid, 0);
  EXPECT_EQ(worker_tid, 1);
  EXPECT_EQ(sink.current_tid(), 0);  // stable on re-query
}

TEST(TraceSinkTest, OwnOutputPassesValidation) {
  TraceSink sink;
  sink.set_thread_name("main");
  sink.duration_event("span \"quoted\"", "cat\\egory", 0, 5);
  sink.instant_event("event\nwith newline", "explore");
  sink.counter_event("busy", -7);
  std::string error;
  EXPECT_TRUE(validate_trace_json(sink.to_json(), &error)) << error;

  // The empty trace is also a valid document.
  TraceSink empty;
  EXPECT_TRUE(validate_trace_json(empty.to_json(), &error)) << error;
}

TEST(TraceSinkTest, ValidatorRejectsMalformedDocuments) {
  std::string error;

  EXPECT_FALSE(validate_trace_json("not json at all", &error));
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(validate_trace_json("[1, 2, 3]", &error));
  EXPECT_NE(error.find("not an object"), std::string::npos);

  EXPECT_FALSE(validate_trace_json("{\"displayTimeUnit\": \"ms\"}", &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);

  // Event missing its name.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"ph\": \"i\", \"ts\": 1, \"pid\": 1, "
      "\"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("name"), std::string::npos);

  // Complete event without a duration.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("dur"), std::string::npos);

  // Counter event without args.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"c\", \"ph\": \"C\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("args"), std::string::npos);

  // Non-metadata event without a timestamp.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"i\", \"ph\": \"i\", \"pid\": 1, "
      "\"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("ts"), std::string::npos);
}

// Regression: the validator's mini-parser used to mishandle \uXXXX
// escapes, so a trace whose process/thread name came from an external
// producer with escaped non-ASCII characters failed validation.
TEST(TraceSinkTest, UnicodeEscapesInNamesDecodeAndValidate) {
  std::string error;

  // BMP escape (\u00e9 = é) and an astral surrogate pair (\ud83d\ude80)
  // inside a thread_name metadata event plus an ordinary event name.
  EXPECT_TRUE(validate_trace_json(
      "{\"traceEvents\": ["
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"r\\u00e9acteur \\ud83d\\ude80\"}},"
      "{\"name\": \"caf\\u00e9 tick\", \"ph\": \"i\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}]}",
      &error))
      << error;

  // Malformed escapes stay positioned errors, not silent acceptance.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"\\uZZZZ\", \"ph\": \"i\", "
      "\"ts\": 1, \"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("non-hex digit"), std::string::npos) << error;

  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"\\udc00\", \"ph\": \"i\", "
      "\"ts\": 1, \"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("lone low surrogate"), std::string::npos) << error;

  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"\\ud83d oops\", \"ph\": \"i\", "
      "\"ts\": 1, \"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("high surrogate"), std::string::npos) << error;

  EXPECT_FALSE(validate_trace_json("{\"traceEvents\": [{\"name\": \"\\u00",
                                   &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"\\q\", \"ph\": \"i\", "
      "\"ts\": 1, \"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("unknown escape"), std::string::npos) << error;
}

TEST(TraceSinkTest, FlowAndAsyncRoundTripValidates) {
  TraceSink sink;
  sink.async_begin("request r1", "serve", 7);
  sink.flow_begin("queue r1", "serve", 7);
  sink.duration_event("submit r1", "serve", 0, 3);
  std::thread worker([&] {
    sink.duration_event("execute r1", "serve", 5, 40);
    sink.flow_end("queue r1", "serve", 7);
  });
  worker.join();
  sink.async_end("request r1", "serve", 7);

  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_trace_json(json, &error)) << error;
}

TEST(TraceSinkTest, RequestContextTagsEvents) {
  TraceSink sink;
  RequestContext ctx{"t42", 42};
  sink.instant_event("tick", "serve", &ctx);
  {
    Span span(&sink, "phase", "serve", &ctx);
  }
  const std::string json = sink.to_json();
  // Both events carry the owning request's trace id in args.
  std::size_t first = json.find("\"trace_id\": \"t42\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"t42\"", first + 1), std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_trace_json(json, &error)) << error;
}

TEST(TraceSinkTest, ValidatorRejectsBadFlowBindings) {
  std::string error;

  // Flow start without a matching finish.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"q\", \"ph\": \"s\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0, \"id\": 9}]}",
      &error));
  EXPECT_NE(error.find("never finished"), std::string::npos);

  // Flow finish binding to an id that was never started.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"q\", \"ph\": \"f\", \"bp\": \"e\", "
      "\"ts\": 1, \"pid\": 1, \"tid\": 0, \"id\": 9}]}",
      &error));
  EXPECT_NE(error.find("no matching"), std::string::npos);

  // The same id opened twice while live.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": ["
      "{\"name\": \"q\", \"ph\": \"s\", \"ts\": 1, \"pid\": 1, \"tid\": 0, "
      "\"id\": 9},"
      "{\"name\": \"q\", \"ph\": \"s\", \"ts\": 2, \"pid\": 1, \"tid\": 0, "
      "\"id\": 9}]}",
      &error));
  EXPECT_NE(error.find("twice"), std::string::npos);

  // Flow event missing its id entirely.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"q\", \"ph\": \"s\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}]}",
      &error));
  EXPECT_NE(error.find("id"), std::string::npos);
}

TEST(TraceSinkTest, ValidatorRejectsBadAsyncSpans) {
  std::string error;

  // Async end without a begin.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"e\", \"cat\": "
      "\"serve\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"id\": 3}]}",
      &error));
  EXPECT_NE(error.find("no matching"), std::string::npos);

  // Async begin never closed.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"b\", \"cat\": "
      "\"serve\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"id\": 3}]}",
      &error));
  EXPECT_NE(error.find("never ended"), std::string::npos);

  // Async event without the category that scopes its id.
  EXPECT_FALSE(validate_trace_json(
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"b\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0, \"id\": 3}]}",
      &error));
  EXPECT_NE(error.find("cat"), std::string::npos);
}

TEST(TraceSinkTest, SpanIsNoOpWithoutSink) {
  // Must not crash or allocate a clock read path.
  Span span(nullptr, "nothing", "none");
}

TEST(TraceSinkTest, SpanEmitsOneCompleteEvent) {
  TraceSink sink;
  { Span span(&sink, "work", "test"); }
  ASSERT_EQ(sink.event_count(), 1u);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_trace_json(json, &error)) << error;
}

TEST(TraceSinkTest, ScopedTimerIsNoOpWithEmptyContext) {
  ObsContext ctx;  // both pointers null
  EXPECT_FALSE(ctx.enabled());
  ScopedTimer timer(ctx, "t.us", "span", "cat");
}

TEST(TraceSinkTest, ScopedTimerFeedsWallClockCounterAndTrace) {
  MetricsRegistry reg;
  TraceSink sink;
  ObsContext ctx{&reg, &sink};
  EXPECT_TRUE(ctx.enabled());
  { ScopedTimer timer(ctx, "test.phase_us", "phase", "test"); }

  EXPECT_EQ(sink.event_count(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::Entry* e = snap.find("test.phase_us");
  ASSERT_NE(e, nullptr);
  // Phase durations are host-clock values and must not leak into the
  // deterministic section.
  EXPECT_EQ(e->determinism, Determinism::kWallClock);
  EXPECT_EQ(snap.deterministic_json().find("test.phase_us"),
            std::string::npos);
}

TEST(TraceSinkTest, TimestampsAreMonotonicSinceConstruction) {
  TraceSink sink;
  const std::uint64_t a = sink.now_us();
  const std::uint64_t b = sink.now_us();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace ifsyn::obs
