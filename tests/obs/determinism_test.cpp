// Integration test for the observability determinism contract: running
// the explorer over the same system at 1/2/4/8 worker threads with a
// fresh registry each time must produce byte-identical deterministic
// metrics (sim.*, synth.*, protocol.*, explore.* counters/histograms),
// and a traced run must serialize to schema-valid Chrome trace JSON.
#include <gtest/gtest.h>

#include <string>

#include "explore/explorer.hpp"
#include "explore/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "suite/flc.hpp"

namespace ifsyn::obs {
namespace {

using suite::FlcCalibration;

explore::ExploreOptions make_options() {
  explore::ExploreOptions options;
  options.compute_cycles_override = {
      {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
  };
  options.space.protocols = {spec::ProtocolKind::kFullHandshake,
                             spec::ProtocolKind::kHalfHandshake};
  options.top_k = 3;  // exercise sim validation under the shared registry
  return options;
}

TEST(ObsDeterminismTest, DeterministicMetricsAreByteIdenticalAcrossThreads) {
  spec::System system = suite::make_flc_kernel();
  std::string reference_json;
  std::string reference_markdown;
  for (int threads : {1, 2, 4, 8}) {
    explore::ExploreOptions options = make_options();
    options.threads = threads;
    MetricsRegistry registry;  // fresh per run — no cross-run accumulation
    options.obs.metrics = &registry;
    explore::Explorer explorer(system, options);
    Result<explore::ExplorationResult> result = explorer.run();
    ASSERT_TRUE(result.is_ok()) << result.status();

    const std::string det = result->metrics.deterministic_json();
    const std::string md = result->metrics.deterministic_markdown();
    if (threads == 1) {
      reference_json = det;
      reference_markdown = md;
      // Sanity: the snapshot actually contains the instrumented layers.
      EXPECT_NE(det.find("explore.points.total"), std::string::npos);
      EXPECT_NE(det.find("explore.cache.misses"), std::string::npos);
      EXPECT_NE(det.find("sim."), std::string::npos);
      EXPECT_NE(det.find("protocol."), std::string::npos);
      continue;
    }
    EXPECT_EQ(det, reference_json)
        << "deterministic metrics differ at " << threads << " threads";
    EXPECT_EQ(md, reference_markdown)
        << "metrics markdown differs at " << threads << " threads";
  }
}

TEST(ObsDeterminismTest, ReportsWithEmbeddedMetricsStayIdentical) {
  // The rendered reports embed the deterministic metrics section, so the
  // engine's byte-identity guarantee must survive the embedding.
  spec::System system = suite::make_flc_kernel();
  std::string reference_markdown;
  std::string reference_json;
  for (int threads : {1, 4}) {
    explore::ExploreOptions options = make_options();
    options.threads = threads;
    explore::Explorer explorer(system, options);
    Result<explore::ExplorationResult> result = explorer.run();
    ASSERT_TRUE(result.is_ok()) << result.status();
    const std::string markdown =
        explore::render_exploration_markdown(system, options, *result);
    const std::string json =
        explore::render_exploration_json(system, options, *result);
    EXPECT_NE(markdown.find("## Metrics"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    if (threads == 1) {
      reference_markdown = markdown;
      reference_json = json;
    } else {
      EXPECT_EQ(markdown, reference_markdown);
      EXPECT_EQ(json, reference_json);
    }
  }
}

TEST(ObsDeterminismTest, ExplorerWithoutAttachedRegistryStillReportsMetrics) {
  // The explorer falls back to a private registry, so ExplorationResult
  // always carries a populated snapshot.
  spec::System system = suite::make_flc_kernel();
  explore::ExploreOptions options = make_options();
  explore::Explorer explorer(system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_FALSE(result->metrics.entries.empty());
  const MetricsSnapshot::Entry* total =
      result->metrics.find("explore.points.total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->counter, result->stats.total_points);
}

TEST(ObsDeterminismTest, TracedExplorationProducesValidChromeTrace) {
  spec::System system = suite::make_flc_kernel();
  explore::ExploreOptions options = make_options();
  options.threads = 2;
  TraceSink sink;
  options.obs.trace = &sink;
  explore::Explorer explorer(system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();

  EXPECT_GT(sink.event_count(), 0u);
  const std::string json = sink.to_json();
  std::string error;
  EXPECT_TRUE(validate_trace_json(json, &error)) << error;
  // The three explorer phases appear as spans.
  EXPECT_NE(json.find("explore: estimate"), std::string::npos);
  EXPECT_NE(json.find("explore: merge"), std::string::npos);
  EXPECT_NE(json.find("explore: validate"), std::string::npos);
}

}  // namespace
}  // namespace ifsyn::obs
