// Unit tests for the metrics registry: counter/gauge/histogram semantics,
// stable handle re-registration, snapshot ordering, and the
// deterministic/wall-clock split in the JSON and markdown renderings.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ifsyn::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(MetricsTest, HistogramBucketsObservationsIncludingOverflow) {
  Histogram h({1, 4, 16});
  h.observe(0);   // <= 1
  h.observe(1);   // <= 1 (bounds are inclusive upper edges)
  h.observe(2);   // <= 4
  h.observe(16);  // <= 16
  h.observe(17);  // overflow
  h.observe(1000);  // overflow

  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 16 + 17 + 1000);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(MetricsTest, ExponentialBoundsDoubleUpToMax) {
  EXPECT_EQ(exponential_bounds(16),
            (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(exponential_bounds(3), (std::vector<std::uint64_t>{1, 2}));
  // Degenerate max still yields a usable one-bucket histogram.
  EXPECT_EQ(exponential_bounds(0), (std::vector<std::uint64_t>{1}));
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // re-registration returns the same metric
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);

  Histogram& h1 = reg.histogram("x.hist", {1, 2});
  Histogram& h2 = reg.histogram("x.hist", {99});  // bounds of first win
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MetricsTest, FirstRegistrationFixesDeterminismClass) {
  MetricsRegistry reg;
  reg.counter("t.phase_us", Determinism::kWallClock).add(5);
  reg.counter("t.phase_us");  // later default-deterministic lookup
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::Entry* e = snap.find("t.phase_us");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->determinism, Determinism::kWallClock);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zeta");
  reg.gauge("alpha");
  reg.histogram("mid", {1});
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "mid");
  EXPECT_EQ(snap.entries[2].name, "zeta");
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsTest, SnapshotCapturesAllThreeKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(-2);
  reg.histogram("h", {10}).observe(3);
  const MetricsSnapshot snap = reg.snapshot();

  const MetricsSnapshot::Entry* c = snap.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->counter, 7u);

  const MetricsSnapshot::Entry* g = snap.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge, -2);

  const MetricsSnapshot::Entry* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->histogram.has_value());
  EXPECT_EQ(h->histogram->count, 1u);
  EXPECT_EQ(h->histogram->sum, 3u);
  ASSERT_EQ(h->histogram->counts.size(), 2u);
  EXPECT_EQ(h->histogram->counts[0], 1u);
  EXPECT_EQ(h->histogram->counts[1], 0u);
}

TEST(MetricsTest, JsonSeparatesDeterministicFromWallClock) {
  MetricsRegistry reg;
  reg.counter("sim.events").add(100);
  reg.counter("phase.p1_us", Determinism::kWallClock).add(1234);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string full = snap.to_json();
  EXPECT_NE(full.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(full.find("\"wall_clock\""), std::string::npos);
  EXPECT_NE(full.find("\"sim.events\": 100"), std::string::npos);
  EXPECT_NE(full.find("\"phase.p1_us\": 1234"), std::string::npos);

  // The deterministic view omits anything wall-clock-classed, so it can be
  // compared byte-for-byte across thread counts.
  const std::string det = snap.deterministic_json();
  EXPECT_NE(det.find("\"sim.events\": 100"), std::string::npos);
  EXPECT_EQ(det.find("phase.p1_us"), std::string::npos);
}

TEST(MetricsTest, DeterministicMarkdownRendersTable) {
  MetricsRegistry reg;
  reg.counter("a.count").add(5);
  reg.counter("b.wall_us", Determinism::kWallClock).add(999);
  reg.histogram("c.cycles", {1, 8}).observe(3);
  const std::string md = reg.snapshot().deterministic_markdown();

  EXPECT_NE(md.find("| metric | value |"), std::string::npos);
  EXPECT_NE(md.find("| a.count | 5 |"), std::string::npos);
  EXPECT_NE(md.find("| c.cycles | count 1, sum 3, max bucket <= 8 |"),
            std::string::npos);
  EXPECT_EQ(md.find("b.wall_us"), std::string::npos);

  // Overflow observations are reported as exceeding the last bound.
  reg.histogram("c.cycles", {1, 8}).observe(100);
  const std::string md2 = reg.snapshot().deterministic_markdown();
  EXPECT_NE(md2.find("max bucket > 8"), std::string::npos);
}

TEST(MetricsTest, EmptySnapshotRendersEmptyMarkdown) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.snapshot().deterministic_markdown(), "");
}

TEST(MetricsTest, ConcurrentCounterUpdatesAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("shared");
  Histogram& h = reg.histogram("shared.hist", exponential_bounds(1024));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(static_cast<std::uint64_t>(i % 100));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ifsyn::obs
