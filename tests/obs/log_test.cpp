// Tests for the bounded structured event log: severity filtering, FIFO
// eviction, the per-(severity, component) rate limiter (driven through
// the explicit-timestamp seam), and JSONL serialization.
#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ifsyn::obs {
namespace {

TEST(EventLogTest, SeverityNames) {
  EXPECT_STREQ(severity_name(Severity::kDebug), "debug");
  EXPECT_STREQ(severity_name(Severity::kInfo), "info");
  EXPECT_STREQ(severity_name(Severity::kWarn), "warn");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
}

TEST(EventLogTest, FiltersBelowMinSeverity) {
  EventLog::Options options;
  options.min_severity = Severity::kWarn;
  EventLog log(options);
  EXPECT_FALSE(log.log(Severity::kDebug, "test", "dropped"));
  EXPECT_FALSE(log.log(Severity::kInfo, "test", "dropped"));
  EXPECT_TRUE(log.log(Severity::kWarn, "test", "kept"));
  EXPECT_TRUE(log.log(Severity::kError, "test", "kept"));
  EXPECT_EQ(log.size(), 2u);
  // Severity filtering is not suppression; nothing is counted.
  EXPECT_EQ(log.suppressed(), 0u);
}

TEST(EventLogTest, EvictsOldestWhenFull) {
  EventLog::Options options;
  options.capacity = 2;
  options.max_per_window = 100;
  EventLog log(options);
  EXPECT_TRUE(log.log(Severity::kInfo, "test", "first"));
  EXPECT_TRUE(log.log(Severity::kInfo, "test", "second"));
  EXPECT_TRUE(log.log(Severity::kInfo, "test", "third"));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.evicted(), 1u);
  const auto events = log.recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "second");
  EXPECT_EQ(events[1].message, "third");
}

TEST(EventLogTest, ZeroCapacityAcceptsNothing) {
  EventLog::Options options;
  options.capacity = 0;
  EventLog log(options);
  EXPECT_FALSE(log.log(Severity::kError, "test", "void"));
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLogTest, RateLimitsPerSeverityComponentKey) {
  EventLog::Options options;
  options.max_per_window = 2;
  options.window_us = 1000;
  EventLog log(options);
  // Two accepted, third suppressed inside the window.
  EXPECT_TRUE(log.log_at(0, Severity::kWarn, "watchdog", "a"));
  EXPECT_TRUE(log.log_at(10, Severity::kWarn, "watchdog", "b"));
  EXPECT_FALSE(log.log_at(20, Severity::kWarn, "watchdog", "c"));
  EXPECT_EQ(log.suppressed(), 1u);
  // A different (severity, component) key has its own window.
  EXPECT_TRUE(log.log_at(30, Severity::kError, "watchdog", "d"));
  EXPECT_TRUE(log.log_at(40, Severity::kWarn, "service", "e"));
  // The window rolls over and the key accepts again.
  EXPECT_TRUE(log.log_at(1000, Severity::kWarn, "watchdog", "f"));
  EXPECT_EQ(log.size(), 5u);
}

TEST(EventLogTest, JsonlShapeAndFieldEscaping) {
  EventLog log;
  log.log_at(5, Severity::kWarn, "serve.watchdog", "worker overdue",
             {{"worker", "1"}, {"note", "say \"hi\"\n"}});
  log.log_at(9, Severity::kInfo, "serve", "plain");
  const std::string jsonl = log.to_jsonl();
  std::istringstream lines(jsonl);
  std::string first, second, extra;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(std::getline(lines, extra));
  EXPECT_NE(first.find("\"ts_us\":5"), std::string::npos);
  EXPECT_NE(first.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(first.find("\"component\":\"serve.watchdog\""),
            std::string::npos);
  EXPECT_NE(first.find("\"worker\":\"1\""), std::string::npos);
  EXPECT_NE(first.find("say \\\"hi\\\"\\n"), std::string::npos);
  // Empty fields object is omitted entirely.
  EXPECT_EQ(second.find("fields"), std::string::npos);
}

TEST(EventLogTest, WriteJsonlRoundTripsAndReportsErrors) {
  EventLog log;
  log.log_at(1, Severity::kInfo, "serve", "service started");
  const std::string path = ::testing::TempDir() + "event_log_test.jsonl";
  std::string error;
  ASSERT_TRUE(log.write_jsonl(path, &error)) << error;
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), log.to_jsonl());
  std::remove(path.c_str());

  EXPECT_FALSE(log.write_jsonl("/nonexistent-dir/event.jsonl", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ifsyn::obs
