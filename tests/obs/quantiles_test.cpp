// Tests for the shared quantile helpers: the exact nearest-rank
// percentile (hoisted out of the serve throughput bench) and the
// log-bucketed HistogramData::quantile sketch, including its documented
// factor-of-two error envelope against the exact estimator.
#include "obs/quantiles.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ifsyn::obs {
namespace {

TEST(PercentileTest, EmptyInputYieldsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, SingleValueIsEveryQuantile) {
  const std::vector<double> one{42.0};
  EXPECT_EQ(percentile(one, 0.0), 42.0);
  EXPECT_EQ(percentile(one, 0.5), 42.0);
  EXPECT_EQ(percentile(one, 1.0), 42.0);
}

TEST(PercentileTest, NearestRankOnKnownData) {
  // 1..10: index = round(p * 9).
  const std::vector<double> values{10, 9, 8, 7, 6, 5, 4, 3, 2, 1};  // unsorted
  EXPECT_EQ(percentile(values, 0.0), 1.0);
  EXPECT_EQ(percentile(values, 0.5), 6.0);  // round(4.5) = 5 -> sorted[5]
  EXPECT_EQ(percentile(values, 0.95), 10.0);
  EXPECT_EQ(percentile(values, 1.0), 10.0);
}

TEST(PercentileTest, DoesNotMutateCaller) {
  const std::vector<double> values{3, 1, 2};
  percentile(values, 0.5);
  EXPECT_EQ(values[0], 3.0);  // taken by value; caller order untouched
}

TEST(HistogramQuantileTest, EmptyHistogramYieldsZero) {
  MetricsRegistry reg;
  reg.histogram("q.test_us", exponential_bounds(1 << 20),
                Determinism::kWallClock);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::Entry* e = snap.find("q.test_us");
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->histogram.has_value());
  EXPECT_EQ(e->histogram->quantile(0.5), 0.0);
}

TEST(HistogramQuantileTest, SketchIsBucketUpperBound) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q.test_us", exponential_bounds(1 << 20),
                               Determinism::kWallClock);
  // Ten observations of 100us: every quantile lands in the (64, 128]
  // bucket, whose upper bound is the estimate.
  for (int i = 0; i < 10; ++i) h.observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::HistogramData& data =
      *snap.find("q.test_us")->histogram;
  EXPECT_EQ(data.quantile(0.5), 128.0);
  EXPECT_EQ(data.quantile(0.99), 128.0);
}

TEST(HistogramQuantileTest, SketchWithinFactorOfTwoOfExact) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q.test_us", exponential_bounds(1 << 20),
                               Determinism::kWallClock);
  std::vector<double> values;
  // A skewed latency-like distribution spanning several octaves.
  for (int i = 1; i <= 200; ++i) {
    const double v = static_cast<double>(i * i);  // 1 .. 40000
    values.push_back(v);
    h.observe(static_cast<std::uint64_t>(v));
  }
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::HistogramData& data =
      *snap.find("q.test_us")->histogram;
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = percentile(values, q);
    const double sketch = data.quantile(q);
    // Documented envelope: v <= e < 2v for in-range values.
    EXPECT_GE(sketch, exact) << "q=" << q;
    EXPECT_LT(sketch, 2.0 * exact) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, OverflowBucketReportsTwiceLastBound) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("q.test_us", {10, 100}, Determinism::kWallClock);
  h.observe(5000);  // beyond the last bound -> overflow bucket
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::HistogramData& data =
      *snap.find("q.test_us")->histogram;
  EXPECT_EQ(data.quantile(0.5), 200.0);
}

TEST(HistogramQuantileTest, QuantileClampsOutOfRangeQ) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q.test_us", exponential_bounds(1024),
                               Determinism::kWallClock);
  h.observe(3);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::HistogramData& data =
      *snap.find("q.test_us")->histogram;
  EXPECT_EQ(data.quantile(-1.0), data.quantile(0.0));
  EXPECT_EQ(data.quantile(2.0), data.quantile(1.0));
}

TEST(HistogramQuantileTest, PrometheusTextCarriesSummarySeries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q.latency_us", exponential_bounds(1 << 20),
                               Determinism::kWallClock);
  for (int i = 0; i < 100; ++i) h.observe(1000);
  const std::string text = reg.snapshot().to_prometheus_text();
  EXPECT_NE(text.find("ifsyn_q_latency_us_summary{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ifsyn_q_latency_us_summary{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ifsyn_q_latency_us_summary{quantile=\"0.99\"}"),
            std::string::npos);
  // All mass at 1000us -> every summary quantile is the (512, 1024]
  // bucket's upper bound.
  EXPECT_NE(text.find("summary{quantile=\"0.99\"} 1024"), std::string::npos);

  // Empty histograms get no summary series.
  MetricsRegistry empty;
  empty.histogram("q.empty_us", exponential_bounds(1024),
                  Determinism::kWallClock);
  EXPECT_EQ(empty.snapshot().to_prometheus_text().find("_summary"),
            std::string::npos);
}

}  // namespace
}  // namespace ifsyn::obs
