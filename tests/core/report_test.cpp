// Markdown synthesis report rendering.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include "sim/interpreter.hpp"
#include "suite/flc.hpp"

namespace ifsyn::core {
namespace {

struct Fixture {
  spec::System refined;
  SynthesisReport synthesis;
  EquivalenceReport equivalence;
  std::vector<protocol::BusTraffic> traffic;

  Fixture() : refined(suite::make_flc_kernel()) {
    spec::System original = refined.clone("original");
    SynthesisOptions options;
    options.arbitrate = true;
    options.compute_cycles_override = {
        {"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
        {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles},
    };
    InterfaceSynthesizer synth(options);
    Result<SynthesisReport> report = synth.run(refined);
    EXPECT_TRUE(report.is_ok()) << report.status();
    synthesis = std::move(report).value();

    Result<EquivalenceReport> eq =
        check_equivalence(original, refined, 10'000'000);
    EXPECT_TRUE(eq.is_ok());
    equivalence = std::move(eq).value();

    sim::SimulationRun run = sim::simulate(refined, 10'000'000, true);
    EXPECT_TRUE(run.result.status.is_ok());
    Result<std::vector<protocol::BusTraffic>> analyzed =
        protocol::analyze_trace(refined, run.kernel->trace(),
                                run.result.end_time);
    EXPECT_TRUE(analyzed.is_ok());
    traffic = std::move(analyzed).value();
  }
};

TEST(ReportTest, FullReportHasAllSections) {
  Fixture f;
  ReportInputs inputs;
  inputs.refined = &f.refined;
  inputs.synthesis = &f.synthesis;
  inputs.equivalence = &f.equivalence;
  inputs.traffic = &f.traffic;

  const std::string md = render_markdown_report(inputs);
  EXPECT_NE(md.find("# Interface synthesis report: flc_kernel"),
            std::string::npos);
  EXPECT_NE(md.find("## Channels"), std::string::npos);
  EXPECT_NE(md.find("| ch1 | EVAL_R3 | write | trru0 | 23 (16+7) | 128 |"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("## Buses"), std::string::npos);
  EXPECT_NE(md.find("### Width exploration: B"), std::string::npos);
  EXPECT_NE(md.find("**(selected)**"), std::string::npos);
  EXPECT_NE(md.find("## Co-simulation"), std::string::npos);
  EXPECT_NE(md.find("functional equivalence: **PASS**"), std::string::npos);
  EXPECT_NE(md.find("## Measured bus traffic"), std::string::npos);
  EXPECT_NE(md.find("| ch1 | 128 |"), std::string::npos);
}

TEST(ReportTest, OptionalSectionsOmitted) {
  Fixture f;
  ReportInputs inputs;
  inputs.refined = &f.refined;
  inputs.synthesis = &f.synthesis;
  const std::string md = render_markdown_report(inputs);
  EXPECT_EQ(md.find("## Co-simulation"), std::string::npos);
  EXPECT_EQ(md.find("## Measured bus traffic"), std::string::npos);
  EXPECT_NE(md.find("## Channels"), std::string::npos);
}

TEST(ReportTest, ZeroChannelSystemRendersWithoutNan) {
  // A system with no cross-module channels has no dedicated-pin baseline:
  // the reduction ratio must degrade to an annotated 0, never NaN.
  spec::System lonely("lonely");
  SynthesisReport empty;
  ReportInputs inputs;
  inputs.refined = &lonely;
  inputs.synthesis = &empty;

  const std::string md = render_markdown_report(inputs);
  EXPECT_EQ(md.find("nan"), std::string::npos) << md;
  EXPECT_EQ(md.find("-nan"), std::string::npos) << md;
  EXPECT_NE(md.find("reduction 0.0 % — no cross-module channels"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("_No cross-module channels._"), std::string::npos);
}

TEST(ReportTest, RequiredInputsAsserted) {
  ReportInputs inputs;  // all null
  EXPECT_THROW(render_markdown_report(inputs), InternalError);
}

}  // namespace
}  // namespace ifsyn::core
