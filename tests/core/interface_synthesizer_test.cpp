// End-to-end interface synthesis: bus generation + protocol generation +
// reporting, the Fig. 1 flow as one call.
#include "core/interface_synthesizer.hpp"

#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "partition/partitioner.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::core {
namespace {

using namespace spec;
using suite::FlcCalibration;

SynthesisOptions flc_options() {
  SynthesisOptions options;
  options.compute_cycles_override = {
      {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
  };
  return options;
}

TEST(SynthesizerTest, FlcKernelUnconstrainedFlow) {
  System system = suite::make_flc_kernel();
  InterfaceSynthesizer synth(flc_options());
  Result<SynthesisReport> report = synth.run(system);
  ASSERT_TRUE(report.is_ok()) << report.status();

  ASSERT_EQ(report->buses.size(), 1u);
  const BusReport& bus = report->buses[0];
  EXPECT_EQ(bus.bus, "B");
  EXPECT_GT(bus.generation.selected_width, 0);
  EXPECT_EQ(bus.generation.total_channel_bits, 46);
  EXPECT_EQ(bus.control_lines, 2);
  EXPECT_EQ(bus.id_bits, 1);  // two channels
  EXPECT_EQ(bus.total_wires,
            bus.generation.selected_width + 3);
  EXPECT_GT(report->interconnect_reduction, 0.0);

  // The system is refined: procedures + servers exist, widths recorded.
  EXPECT_TRUE(system.find_bus("B")->generated());
  EXPECT_NE(system.find_procedure("Sendch1"), nullptr);
  EXPECT_NE(system.find_procedure("Receivech2"), nullptr);
  EXPECT_NE(system.find_process("trru0proc"), nullptr);
  EXPECT_NE(system.find_process("trru2proc"), nullptr);
}

TEST(SynthesizerTest, Fig8ConstraintsSelectWidth20) {
  System system = suite::make_flc_kernel();
  SynthesisOptions options = flc_options();
  options.constraints["B"] = {bus::min_peak_rate("ch2", 10, 10)};
  InterfaceSynthesizer synth(options);
  Result<SynthesisReport> report = synth.run(system);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->buses[0].generation.selected_width, 20);
  EXPECT_EQ(system.find_bus("B")->width, 20);
}

TEST(SynthesizerTest, RefinedFlcKernelMatchesOriginalBehavior) {
  System original = suite::make_flc_kernel();
  System refined = original.clone("flc_refined");
  SynthesisOptions options = flc_options();
  options.arbitrate = true;  // EVAL_R3 and CONV_R2 overlap on the bus
  InterfaceSynthesizer synth(options);
  ASSERT_TRUE(synth.run(refined).is_ok());

  Result<EquivalenceReport> eq = check_equivalence(original, refined);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "" : eq->mismatches[0]);
}

TEST(SynthesizerTest, PinnedWidthIsRespected) {
  System system = suite::make_fig3_system();  // width pinned to 8
  InterfaceSynthesizer synth;
  Result<SynthesisReport> report = synth.run(system);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(system.find_bus("B")->width, 8);
  // Pinned groups produce no generation entry (no search ran).
  EXPECT_TRUE(report->buses.empty());
}

TEST(SynthesizerTest, FeasibleGroupDoesNotSplit) {
  System system = suite::make_flc_kernel();
  SynthesisOptions options = flc_options();
  options.auto_split_infeasible = true;
  InterfaceSynthesizer synth(options);
  Result<SynthesisReport> report = synth.run(system);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->split_buses.empty());
}

/// Four processes, each streaming 64 words into its own remote array with
/// no computation in between (compute cycles pinned to 0). Each channel
/// then saturates exactly half a full-handshake bus at every width, so
/// any TWO channels exceed Eq. 1 everywhere — w*ceil(b/w) < 2b for all
/// w <= b — and the group can only be implemented as dedicated buses.
System make_saturating_system() {
  System system("saturated");
  std::vector<partition::ModuleAssignment> assignment{
      partition::ModuleAssignment{"CHIP_P", {}, {}},
      partition::ModuleAssignment{"CHIP_M", {}, {}},
  };
  for (int p = 0; p < 4; ++p) {
    const std::string id = std::to_string(p);
    system.add_variable(
        Variable("M" + id, Type::array(Type::bits(16), 64)));
    Process proc;
    proc.name = "P" + id;
    proc.body = Block{for_stmt(
        "i", lit(0), lit(63),
        Block{assign(lv_idx("M" + id, var("i")),
                     add(var("i"), lit(p)))})};
    system.add_process(std::move(proc));
    assignment[0].processes.push_back("P" + id);
    assignment[1].variables.push_back("M" + id);
  }
  Status status = partition::apply_partition(system, assignment);
  EXPECT_TRUE(status.is_ok()) << status;
  status = partition::group_all_channels(system, "SAT");
  EXPECT_TRUE(status.is_ok()) << status;
  return system;
}

TEST(SynthesizerTest, InfeasibleGroupSplitsIntoReportedBuses) {
  System original = make_saturating_system();
  System refined = original.clone("saturated_refined");

  SynthesisOptions options;
  options.auto_split_infeasible = true;
  options.arbitrate = true;
  for (int p = 0; p < 4; ++p) {
    options.compute_cycles_override["P" + std::to_string(p)] = 0;
  }
  InterfaceSynthesizer synth(options);
  Result<SynthesisReport> report = synth.run(refined);
  ASSERT_TRUE(report.is_ok()) << report.status();

  // All four channels end up on dedicated buses: the original SAT plus
  // three split-off ones, all reported.
  ASSERT_EQ(report->split_buses.size(), 3u);
  ASSERT_EQ(report->buses.size(), 4u);
  for (const std::string& name : report->split_buses) {
    const BusGroup* bus = refined.find_bus(name);
    ASSERT_NE(bus, nullptr) << name;
    EXPECT_EQ(bus->channel_names.size(), 1u);
    EXPECT_GT(bus->width, 0);
  }
  EXPECT_EQ(refined.find_bus("SAT")->channel_names.size(), 1u);

  // The refinement must still behave like the original spec.
  Result<EquivalenceReport> eq = check_equivalence(original, refined);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "" : eq->mismatches[0]);
}

TEST(SynthesizerTest, InfeasibleGroupFailsWhenSplittingDisabled) {
  System system = make_saturating_system();
  SynthesisOptions options;
  options.auto_split_infeasible = false;
  for (int p = 0; p < 4; ++p) {
    options.compute_cycles_override["P" + std::to_string(p)] = 0;
  }
  InterfaceSynthesizer synth(options);
  EXPECT_EQ(synth.run(system).status().code(), StatusCode::kInfeasible);
}

TEST(SynthesizerTest, HardwiredBaselineCountsDedicatedPins) {
  System system = suite::make_flc_kernel();
  SynthesisOptions options = flc_options();
  options.protocol = ProtocolKind::kHardwiredPort;
  InterfaceSynthesizer synth(options);
  Result<SynthesisReport> report = synth.run(system);
  ASSERT_TRUE(report.is_ok()) << report.status();
  ASSERT_EQ(report->buses.size(), 1u);
  // ch1 write: 23 message-wide lines; ch2 read: max(7,16)=16 lines.
  EXPECT_EQ(system.find_bus("B")->width, 23 + 16);
  EXPECT_NE(system.find_signal("B_ch1"), nullptr);
  EXPECT_NE(system.find_signal("B_ch2"), nullptr);
}

TEST(SynthesizerTest, RequiresBusGroups) {
  System system("empty");
  InterfaceSynthesizer synth;
  Result<SynthesisReport> report = synth.run(system);
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ifsyn::core
