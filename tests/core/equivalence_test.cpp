// Co-simulation equivalence checking between original and refined specs.
#include "core/equivalence.hpp"

#include <gtest/gtest.h>

#include "protocol/protocol_generator.hpp"
#include "suite/fig3_example.hpp"

namespace ifsyn::core {
namespace {

using namespace spec;

TEST(EquivalenceTest, RefinedFig3IsEquivalent) {
  System original = suite::make_fig3_system();
  System refined = original.clone("fig3_refined");
  protocol::ProtocolGenOptions options;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());

  Result<EquivalenceReport> report = check_equivalence(original, refined);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_TRUE(report->equivalent)
      << (report->mismatches.empty() ? "" : report->mismatches[0]);
  EXPECT_TRUE(report->mismatches.empty());
  // Communication costs time: the refined run is strictly slower.
  EXPECT_GT(report->refined_time, report->original_time);
}

TEST(EquivalenceTest, DetectsVariableDivergence) {
  System original = suite::make_fig3_system();
  System broken = original.clone("broken");
  // Sabotage: Q writes a different value.
  Process* q = broken.find_process("Q");
  q->body = {assign(lv_idx("MEM", lit(60)), lit(1234))};

  Result<EquivalenceReport> report = check_equivalence(original, broken);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_FALSE(report->equivalent);
  ASSERT_FALSE(report->mismatches.empty());
  EXPECT_NE(report->mismatches[0].find("MEM"), std::string::npos);
  EXPECT_NE(report->mismatches[0].find("(60)"), std::string::npos);
}

TEST(EquivalenceTest, DetectsIncompleteProcess) {
  System original = suite::make_fig3_system();
  System stuck = original.clone("stuck");
  // P waits on a signal that never fires.
  Signal never;
  never.name = "NEVER";
  never.fields = {SignalField{"", 1}};
  stuck.add_signal(std::move(never));
  Block body = stuck.find_process("P")->body;
  body.insert(body.begin(), wait_until(eq(sig("NEVER"), lit(1))));
  stuck.find_process("P")->body = std::move(body);

  Result<EquivalenceReport> report = check_equivalence(original, stuck);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_FALSE(report->equivalent);
  bool found = false;
  for (const auto& m : report->mismatches) {
    if (m.find("P") != std::string::npos &&
        m.find("did not complete") != std::string::npos)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EquivalenceTest, ObservedSubsetLimitsComparison) {
  System original = suite::make_fig3_system();
  System broken = original.clone("broken");
  broken.find_process("Q")->body = {
      assign(lv_idx("MEM", lit(60)), lit(9999))};

  // Observing only X hides the MEM divergence.
  Result<EquivalenceReport> report =
      check_equivalence(original, broken, 1'000'000, {"X"});
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->equivalent);
}

TEST(EquivalenceTest, SimulationFailurePropagates) {
  System original = suite::make_fig3_system();
  System bad = original.clone("bad");
  bad.find_process("P")->body = {assign("UNDECLARED", lit(1))};
  Result<EquivalenceReport> report = check_equivalence(original, bad);
  EXPECT_EQ(report.status().code(), StatusCode::kSimulationError);
  EXPECT_NE(report.status().message().find("refined system"),
            std::string::npos);
}

}  // namespace
}  // namespace ifsyn::core
