// Reference rewriting (Sec. 4 step 4): writes become Send calls, reads
// hoist through Xtemp-style temporaries, unsupported shapes are rejected
// rather than mis-compiled.
#include "protocol/reference_rewriter.hpp"

#include <gtest/gtest.h>

#include "spec/printer.hpp"

namespace ifsyn::protocol {
namespace {

using namespace spec;

struct Fixture {
  Channel x_write;
  Channel x_read;
  Channel mem_write;
  Channel mem_read;
  std::map<std::string, RemoteAccess> remotes;

  Fixture() {
    x_write.name = "CH0";
    x_write.variable = "X";
    x_write.dir = ChannelDir::kWrite;
    x_write.data_bits = 16;
    x_read = x_write;
    x_read.name = "CH1";
    x_read.dir = ChannelDir::kRead;
    mem_write.name = "CH2";
    mem_write.variable = "MEM";
    mem_write.dir = ChannelDir::kWrite;
    mem_write.data_bits = 16;
    mem_write.addr_bits = 6;
    mem_read = mem_write;
    mem_read.name = "CH4";
    mem_read.dir = ChannelDir::kRead;
    remotes["X"] = RemoteAccess{&x_read, &x_write};
    remotes["MEM"] = RemoteAccess{&mem_read, &mem_write};
  }

  Process process_with(Block body) {
    Process p;
    p.name = "P";
    p.body = std::move(body);
    return p;
  }

  std::string rewrite_to_text(Block body, Status* status_out = nullptr) {
    Process p = process_with(std::move(body));
    ReferenceRewriter rewriter(remotes);
    Status status = rewriter.rewrite(p);
    if (status_out) *status_out = status;
    EXPECT_TRUE(status_out != nullptr || status.is_ok()) << status;
    return print_process(p);
  }
};

TEST(RewriterTest, ScalarWriteBecomesSend) {
  Fixture f;
  const std::string text = f.rewrite_to_text({assign("X", lit(32))});
  // Fig. 5: "X <= 32" -> "SendCH0(32)".
  EXPECT_NE(text.find("SendCH0(32);"), std::string::npos) << text;
  EXPECT_EQ(text.find("X :="), std::string::npos);
}

TEST(RewriterTest, ArrayWriteBecomesSendWithAddress) {
  Fixture f;
  const std::string text =
      f.rewrite_to_text({assign(lv_idx("MEM", lit(60)), var("COUNT"))});
  // Fig. 5: "MEM(60) := COUNT" -> "SendCH3(60, COUNT)" (our CH2).
  EXPECT_NE(text.find("SendCH2(60, COUNT);"), std::string::npos) << text;
}

TEST(RewriterTest, ScalarReadHoistsThroughTemp) {
  Fixture f;
  const std::string text =
      f.rewrite_to_text({assign("AD", add(var("X"), lit(7)))});
  // Fig. 5's Xtemp pattern.
  EXPECT_NE(text.find("ReceiveCH1(X_tmp0);"), std::string::npos) << text;
  EXPECT_NE(text.find("AD := (X_tmp0 + 7);"), std::string::npos);
  EXPECT_NE(text.find("variable X_tmp0 : bit_vector(15 downto 0);"),
            std::string::npos);
}

TEST(RewriterTest, ArrayReadPassesIndexToReceive) {
  Fixture f;
  const std::string text =
      f.rewrite_to_text({assign("IR", aref("MEM", var("PC")))});
  EXPECT_NE(text.find("ReceiveCH4(PC, MEM_tmp0);"), std::string::npos)
      << text;
  EXPECT_NE(text.find("IR := MEM_tmp0;"), std::string::npos);
}

TEST(RewriterTest, CombinedReadAndWriteInOneStatement) {
  Fixture f;
  // MEM(AD) := X + 7  -> receive X, then send to MEM.
  const std::string text = f.rewrite_to_text(
      {assign(lv_idx("MEM", var("AD")), add(var("X"), lit(7)))});
  EXPECT_NE(text.find("ReceiveCH1(X_tmp0);"), std::string::npos) << text;
  EXPECT_NE(text.find("SendCH2(AD, (X_tmp0 + 7));"), std::string::npos);
}

TEST(RewriterTest, MultipleReadsGetDistinctTemps) {
  Fixture f;
  const std::string text =
      f.rewrite_to_text({assign("Y", add(var("X"), var("X")))});
  EXPECT_NE(text.find("X_tmp0"), std::string::npos);
  EXPECT_NE(text.find("X_tmp1"), std::string::npos);
  // Two sequential receives before the use.
  EXPECT_NE(text.find("ReceiveCH1(X_tmp0);"), std::string::npos);
  EXPECT_NE(text.find("ReceiveCH1(X_tmp1);"), std::string::npos);
}

TEST(RewriterTest, ReadInsideForBodyReceivesPerIteration) {
  Fixture f;
  const std::string text = f.rewrite_to_text({for_stmt(
      "i", lit(0), lit(9),
      {assign("ACC", add(var("ACC"), aref("MEM", var("i"))))})});
  // The receive lives inside the loop body, after the loop header.
  const auto loop_pos = text.find("for i in 0 to 9 loop");
  const auto recv_pos = text.find("ReceiveCH4(i, MEM_tmp0);");
  ASSERT_NE(loop_pos, std::string::npos) << text;
  ASSERT_NE(recv_pos, std::string::npos);
  EXPECT_GT(recv_pos, loop_pos);
}

TEST(RewriterTest, IfConditionReadHoistsBeforeBranch) {
  Fixture f;
  const std::string text = f.rewrite_to_text(
      {if_stmt(gt(var("X"), lit(5)), {assign("A", lit(1))})});
  const auto recv_pos = text.find("ReceiveCH1(X_tmp0);");
  const auto if_pos = text.find("if (X_tmp0 > 5) then");
  ASSERT_NE(recv_pos, std::string::npos) << text;
  ASSERT_NE(if_pos, std::string::npos);
  EXPECT_LT(recv_pos, if_pos);
}

TEST(RewriterTest, NonRemoteAccessesUntouched) {
  Fixture f;
  const std::string text = f.rewrite_to_text(
      {assign("LOCAL", add(var("OTHER"), lit(1)))});
  EXPECT_NE(text.find("LOCAL := (OTHER + 1);"), std::string::npos) << text;
  EXPECT_EQ(text.find("Receive"), std::string::npos);
}

TEST(RewriterTest, OutArgToRemoteRoutesThroughTempAndSend) {
  Fixture f;
  const std::string text =
      f.rewrite_to_text({call("Helper", {CallArg(lv("X"))})});
  EXPECT_NE(text.find("Helper(X_tmp0);"), std::string::npos) << text;
  const auto call_pos = text.find("Helper(X_tmp0);");
  const auto send_pos = text.find("SendCH0(X_tmp0);");
  ASSERT_NE(send_pos, std::string::npos);
  EXPECT_GT(send_pos, call_pos);
}

TEST(RewriterTest, WhileConditionReadIsUnsupported) {
  Fixture f;
  Status status;
  f.rewrite_to_text({while_stmt(gt(var("X"), lit(0)), {})}, &status);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

TEST(RewriterTest, WaitUntilConditionReadIsUnsupported) {
  Fixture f;
  Status status;
  f.rewrite_to_text({wait_until(gt(var("X"), lit(0)))}, &status);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

TEST(RewriterTest, SliceWriteToRemoteIsUnsupported) {
  Fixture f;
  Status status;
  f.rewrite_to_text({assign(lv_slice("X", lit(7), lit(0)), lit(1))},
                    &status);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

TEST(RewriterTest, MissingDirectionChannelIsUnsupported) {
  Fixture f;
  f.remotes["X"].read = nullptr;  // write-only variable
  Process p = f.process_with({assign("Y", var("X"))});
  ReferenceRewriter rewriter(f.remotes);
  EXPECT_EQ(rewriter.rewrite(p).code(), StatusCode::kUnsupported);
}

TEST(RewriterTest, IdempotentWhenNothingRemote) {
  Fixture f;
  Process p = f.process_with({assign("X", lit(1))});
  ReferenceRewriter rewriter(f.remotes);
  ASSERT_TRUE(rewriter.rewrite(p).is_ok());
  const std::string once = print_process(p);
  ASSERT_TRUE(rewriter.rewrite(p).is_ok());
  EXPECT_EQ(print_process(p), once);
}

}  // namespace
}  // namespace ifsyn::protocol
