// Protocol library: per-protocol control fields and the word-level
// sender/receiver statement shapes (compared against Fig. 4's listing).
#include "protocol/protocol_library.hpp"

#include <gtest/gtest.h>

#include "spec/printer.hpp"

namespace ifsyn::protocol {
namespace {

using namespace spec;

WireContext full_ctx() {
  return WireContext{"B", 8, 2, ProtocolKind::kFullHandshake, 2};
}

TEST(ProtocolLibraryTest, ControlFieldsPerProtocol) {
  auto full = protocol_signals(ProtocolKind::kFullHandshake);
  ASSERT_EQ(full.control_fields.size(), 2u);
  EXPECT_EQ(full.control_fields[0].name, "START");
  EXPECT_EQ(full.control_fields[1].name, "DONE");
  EXPECT_EQ(full.strobe_field, "START");
  EXPECT_EQ(full.ack_field, "DONE");

  auto half = protocol_signals(ProtocolKind::kHalfHandshake);
  ASSERT_EQ(half.control_fields.size(), 1u);
  EXPECT_TRUE(half.ack_field.empty());

  auto fixed = protocol_signals(ProtocolKind::kFixedDelay);
  ASSERT_EQ(fixed.control_fields.size(), 1u);

  auto wired = protocol_signals(ProtocolKind::kHardwiredPort);
  ASSERT_EQ(wired.control_fields.size(), 2u);
}

TEST(ProtocolLibraryTest, HoldCycles) {
  EXPECT_EQ(full_ctx().hold_cycles(), 1);
  WireContext half{"B", 8, 0, ProtocolKind::kHalfHandshake, 2};
  EXPECT_EQ(half.hold_cycles(), 1);
  WireContext fixed{"B", 8, 0, ProtocolKind::kFixedDelay, 5};
  EXPECT_EQ(fixed.hold_cycles(), 5);
}

TEST(ProtocolLibraryTest, FullHandshakeSenderWordMatchesFig4) {
  Block block = sender_word(full_ctx(), var("w"), nullptr);
  const std::string text = print_block(block);
  // Fig. 4 SendCH0 inner loop:
  //   B.data <= ...; B.START <= '1'; wait until B.DONE = '1';
  //   B.START <= '0'; wait until B.DONE = '0';
  EXPECT_EQ(text,
            "B.DATA <= w;\n"
            "B.START <= 1;\n"
            "wait for 1 cycles;\n"
            "wait until (B.DONE = 1);\n"
            "B.START <= 0;\n"
            "wait for 1 cycles;\n"
            "wait until (B.DONE = 0);\n");
}

TEST(ProtocolLibraryTest, FullHandshakeReceiverWordMatchesFig4) {
  ExprPtr guard = eq(sig("B", "ID"), bin("00"));
  Block block = receiver_word(full_ctx(), lv("rxdata"), guard, nullptr);
  const std::string text = print_block(block);
  // Fig. 4 ReceiveCH0 inner loop:
  //   wait until (B.START = '1') and (B.ID = "00");
  //   rxdata ... := B.DATA; B.DONE <= '1';
  //   wait until (B.START = '0'); B.DONE <= '0';
  EXPECT_EQ(text,
            "wait until ((B.START = 1) and (B.ID = \"00\"));\n"
            "rxdata := B.DATA;\n"
            "B.DONE <= 1;\n"
            "wait until (B.START = 0);\n"
            "B.DONE <= 0;\n");
}

TEST(ProtocolLibraryTest, FullHandshakeHasEmptyEpilogue) {
  EXPECT_TRUE(phase_epilogue(full_ctx()).empty());
}

TEST(ProtocolLibraryTest, StrobeSenderTagsParityAndHolds) {
  WireContext ctx{"B", 8, 2, ProtocolKind::kFixedDelay, 3};
  Block block = sender_word(ctx, var("w"), mod(var("J"), lit(2)));
  const std::string text = print_block(block);
  EXPECT_EQ(text,
            "B.DATA <= w;\n"
            "B.START <= (J mod 2);\n"
            "wait for 3 cycles;\n");
}

TEST(ProtocolLibraryTest, StrobeReceiverWaitsForParity) {
  WireContext ctx{"B", 8, 2, ProtocolKind::kHalfHandshake, 2};
  ExprPtr guard = eq(sig("B", "ID"), bin("01"));
  Block block = receiver_word(ctx, lv("rxdata"), guard, lit(1));
  const std::string text = print_block(block);
  EXPECT_EQ(text,
            "wait until ((B.START = 1) and (B.ID = \"01\"));\n"
            "rxdata := B.DATA;\n");
}

TEST(ProtocolLibraryTest, StrobeEpilogueResetsStrobe) {
  WireContext ctx{"B", 8, 0, ProtocolKind::kHalfHandshake, 2};
  Block block = phase_epilogue(ctx);
  EXPECT_EQ(print_block(block),
            "B.START <= 0;\n"
            "wait for 1 cycles;\n");
}

TEST(ProtocolLibraryTest, StrobeProtocolsRequireParity) {
  WireContext ctx{"B", 8, 0, ProtocolKind::kHalfHandshake, 2};
  EXPECT_THROW(sender_word(ctx, var("w"), nullptr), InternalError);
  EXPECT_THROW(receiver_word(ctx, lv("x"), nullptr, nullptr), InternalError);
}

TEST(ProtocolLibraryTest, DispatchConditionIsStrobeHigh) {
  EXPECT_EQ(dispatch_condition(full_ctx())->to_string(), "(B.START = 1)");
  WireContext hw{"B_CH0", 23, 0, ProtocolKind::kHardwiredPort, 2};
  EXPECT_EQ(dispatch_condition(hw)->to_string(), "(B_CH0.START = 1)");
}

}  // namespace
}  // namespace ifsyn::protocol
