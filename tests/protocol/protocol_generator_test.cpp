// Protocol generation (Sec. 4) end-to-end on the Fig. 3 system: the five
// steps produce the bus record, the procedures, the rewritten behaviors
// and the server processes -- and the refined system simulates to the same
// state as the original (the paper's simulatability claim).
#include "protocol/protocol_generator.hpp"

#include <gtest/gtest.h>

#include "protocol/procedure_synthesis.hpp"
#include "protocol/variable_process.hpp"
#include "sim/interpreter.hpp"
#include "spec/printer.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::protocol {
namespace {

using namespace spec;

System refined_fig3(ProtocolGenOptions options = {}) {
  suite::Fig3Options fig3;
  if (!options.arbitrate) {
    // Without arbitration P and Q must not overlap on the bus; stagger Q
    // far beyond P's transactions.
    fig3.q_start_delay = 500;
  }
  System system = suite::make_fig3_system(fig3);
  ProtocolGenerator generator(options);
  Status status = generator.generate_all(system);
  EXPECT_TRUE(status.is_ok()) << status;
  return system;
}

TEST(ProtocolGeneratorTest, BusRecordHasPaperStructure) {
  System refined = refined_fig3();
  const Signal* bus = refined.find_signal("B");
  ASSERT_NE(bus, nullptr);
  // Fig. 4: START, DONE : bit; ID : bit_vector(1 downto 0);
  //         DATA : bit_vector(7 downto 0)
  ASSERT_NE(bus->field("START"), nullptr);
  ASSERT_NE(bus->field("DONE"), nullptr);
  ASSERT_NE(bus->field("ID"), nullptr);
  ASSERT_NE(bus->field("DATA"), nullptr);
  EXPECT_EQ(bus->field("START")->width, 1);
  EXPECT_EQ(bus->field("DONE")->width, 1);
  EXPECT_EQ(bus->field("ID")->width, 2);  // 4 channels -> 2 ID lines
  EXPECT_EQ(bus->field("DATA")->width, 8);
}

TEST(ProtocolGeneratorTest, ChannelIdsAreSequentialAndRecorded) {
  System refined = refined_fig3();
  const BusGroup* bus = refined.find_bus("B");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->id_bits, 2);
  EXPECT_EQ(bus->control_lines, 2);
  for (int i = 0; i < 4; ++i) {
    const Channel* ch = refined.find_channel("CH" + std::to_string(i));
    ASSERT_NE(ch, nullptr);
    EXPECT_EQ(ch->id, i);
  }
}

TEST(ProtocolGeneratorTest, ProceduresGeneratedPerChannel) {
  System refined = refined_fig3();
  // CH0: P writes X -> SendCH0 + ServeCH0
  EXPECT_NE(refined.find_procedure("SendCH0"), nullptr);
  EXPECT_NE(refined.find_procedure("ServeCH0"), nullptr);
  // CH1: P reads X -> ReceiveCH1 + ServeCH1
  EXPECT_NE(refined.find_procedure("ReceiveCH1"), nullptr);
  EXPECT_NE(refined.find_procedure("ServeCH1"), nullptr);
  // CH2, CH3: writes to MEM
  EXPECT_NE(refined.find_procedure("SendCH2"), nullptr);
  EXPECT_NE(refined.find_procedure("SendCH3"), nullptr);
}

TEST(ProtocolGeneratorTest, SendProcedureSlicesMessageIntoBusWords) {
  System refined = refined_fig3();
  const Procedure* send = refined.find_procedure("SendCH0");
  ASSERT_NE(send, nullptr);
  // 16-bit X over an 8-bit bus: Fig. 4's "for J in 1 to 2 loop".
  const std::string text = print_procedure(*send);
  EXPECT_NE(text.find("for J in 1 to 2 loop"), std::string::npos) << text;
  EXPECT_NE(text.find("B.DATA"), std::string::npos);
  EXPECT_NE(text.find("B.START"), std::string::npos);
}

TEST(ProtocolGeneratorTest, ServerProcessesCreatedPerVariable) {
  System refined = refined_fig3();
  // Fig. 5: Xproc and MEMproc.
  const Process* xproc = refined.find_process("Xproc");
  const Process* memproc = refined.find_process("MEMproc");
  ASSERT_NE(xproc, nullptr);
  ASSERT_NE(memproc, nullptr);
  const std::string mem_text = print_process(*memproc);
  EXPECT_NE(mem_text.find("ServeCH2"), std::string::npos) << mem_text;
  EXPECT_NE(mem_text.find("ServeCH3"), std::string::npos);
  // Servers join the module their variable lives on.
  const Module* mem_module = refined.module_of_process("MEMproc");
  ASSERT_NE(mem_module, nullptr);
  EXPECT_EQ(mem_module->name, "COMP_MEM");
}

TEST(ProtocolGeneratorTest, AccessorBodiesRewrittenToCalls) {
  System refined = refined_fig3();
  const Process* p = refined.find_process("P");
  ASSERT_NE(p, nullptr);
  const std::string text = print_process(*p);
  // Fig. 5: SendCH0(32); ReceiveCH1(...); SendCH2(AD, ...);
  EXPECT_NE(text.find("SendCH0(32)"), std::string::npos) << text;
  EXPECT_NE(text.find("ReceiveCH1(X_tmp0)"), std::string::npos) << text;
  EXPECT_NE(text.find("SendCH2(AD"), std::string::npos) << text;
  // Direct accesses to X and MEM are gone.
  EXPECT_EQ(text.find("X :="), std::string::npos);
  EXPECT_EQ(text.find("MEM("), std::string::npos);
}

TEST(ProtocolGeneratorTest, RequiresWidthBeforeGeneration) {
  System system = suite::make_fig3_system();
  system.find_bus("B")->width = 0;
  ProtocolGenerator generator;
  Status status = generator.generate_all(system);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolGeneratorTest, RefinedSystemSimulatesToOriginalState) {
  System refined = refined_fig3();
  sim::SimulationRun run = sim::simulate(refined);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_TRUE(run.result.find("P")->completed);
  EXPECT_TRUE(run.result.find("Q")->completed);
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(),
            static_cast<std::uint64_t>(suite::Fig3Expected::kX));
  EXPECT_EQ(run.interpreter->value_of("MEM").at(5).to_uint(),
            static_cast<std::uint64_t>(suite::Fig3Expected::kMemAt5));
  EXPECT_EQ(run.interpreter->value_of("MEM").at(60).to_uint(),
            static_cast<std::uint64_t>(suite::Fig3Expected::kMemAt60));
}

TEST(ProtocolGeneratorTest, ArbitrationAllowsOverlappingMasters) {
  ProtocolGenOptions options;
  options.arbitrate = true;
  // Default Fig. 3 delays overlap P and Q on the bus; the lock must
  // serialize them.
  System system = suite::make_fig3_system();
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());

  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("MEM").at(5).to_uint(), 39u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(60).to_uint(), 77u);
}

TEST(ProtocolGeneratorTest, HalfHandshakeRefinementSimulates) {
  ProtocolGenOptions options;
  options.protocol = ProtocolKind::kHalfHandshake;
  options.arbitrate = true;
  System system = suite::make_fig3_system();
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());
  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(), 32u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(60).to_uint(), 77u);
}

TEST(ProtocolGeneratorTest, FixedDelayRefinementSimulates) {
  ProtocolGenOptions options;
  options.protocol = ProtocolKind::kFixedDelay;
  options.fixed_delay_cycles = 3;
  options.arbitrate = true;
  System system = suite::make_fig3_system();
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());
  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("MEM").at(5).to_uint(), 39u);
}

TEST(ProtocolGeneratorTest, HardwiredPortsRefinementSimulates) {
  ProtocolGenOptions options;
  options.protocol = ProtocolKind::kHardwiredPort;
  System system = suite::make_fig3_system();
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(system).is_ok());

  // Every channel owns a dedicated signal; no shared record, no IDs.
  EXPECT_EQ(system.find_signal("B"), nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(system.find_signal("B_CH" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(system.find_bus("B")->id_bits, 0);

  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(), 32u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(5).to_uint(), 39u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(60).to_uint(), 77u);
}

TEST(ProtocolGeneratorTest, StrobeProtocolsSurviveArbitratedMultiMaster) {
  // Regression: with two masters sharing a strobe-protocol bus, the
  // request->response turnaround used to race the requester's phase
  // epilogue (an even-word request let the server start responding one
  // hold cycle early, desynchronizing the word stream). The explicit
  // bus_turnaround closes it; both FLC kernel processes must finish and
  // the transferred data must round-trip exactly.
  for (auto kind :
       {ProtocolKind::kHalfHandshake, ProtocolKind::kFixedDelay}) {
    ProtocolGenOptions options;
    options.protocol = kind;
    options.arbitrate = true;
    System system = suite::make_flc_kernel();
    system.find_bus("B")->width = 5;  // 7-bit address = 2 request words
    ProtocolGenerator generator(options);
    ASSERT_TRUE(generator.generate_all(system).is_ok());
    sim::SimulationRun run = sim::simulate(system, 10'000'000);
    ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
    EXPECT_TRUE(run.result.find("EVAL_R3")->completed);
    EXPECT_TRUE(run.result.find("CONV_R2")->completed);
    // trru0 was filled over ch1: spot-check the transferred values.
    EXPECT_EQ(run.interpreter->value_of("trru0").at(0).to_uint(), 11u);
    EXPECT_EQ(run.interpreter->value_of("trru0").at(127).to_uint(),
              127u * 3 + 11);
    // CONV_R2 accumulated trru2 over ch2.
    long long expected = 0;
    for (int i = 0; i < 128; ++i) expected += (i * 5 + 3) % 65536;
    EXPECT_EQ(run.interpreter->value_of("CONV2_OUT").get().to_int(),
              expected);
  }
}

TEST(ProtocolGeneratorTest, GenerationIsRejectedTwice) {
  System system = refined_fig3();
  ProtocolGenerator generator;
  Status status = generator.generate_bus(system, "B");
  EXPECT_FALSE(status.is_ok());
}

}  // namespace
}  // namespace ifsyn::protocol
