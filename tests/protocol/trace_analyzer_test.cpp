// Trace analysis: decoding per-channel transactions and bus utilization
// back out of recorded waveforms.
#include "protocol/trace_analyzer.hpp"

#include <gtest/gtest.h>

#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::protocol {
namespace {

using namespace spec;

TEST(TraceAnalyzerTest, WordsPerTransaction) {
  Channel write_scalar;
  write_scalar.dir = ChannelDir::kWrite;
  write_scalar.data_bits = 16;
  EXPECT_EQ(words_per_transaction(write_scalar, 8), 2);   // Fig. 4
  EXPECT_EQ(words_per_transaction(write_scalar, 16), 1);

  Channel write_array = write_scalar;
  write_array.addr_bits = 6;  // 22-bit message
  EXPECT_EQ(words_per_transaction(write_array, 8), 3);

  Channel read_scalar = write_scalar;
  read_scalar.dir = ChannelDir::kRead;
  // dummy request word + two data words
  EXPECT_EQ(words_per_transaction(read_scalar, 8), 3);

  Channel read_array = write_array;
  read_array.dir = ChannelDir::kRead;
  read_array.addr_bits = 7;
  // ceil(7/8)=1 request + ceil(16/8)=2 response
  EXPECT_EQ(words_per_transaction(read_array, 8), 3);
}

TEST(TraceAnalyzerTest, Fig3TrafficDecodesExactly) {
  System refined = suite::make_fig3_system();
  ProtocolGenOptions options;
  options.arbitrate = true;
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());

  sim::SimulationRun run = sim::simulate(refined, 1'000'000, /*trace=*/true);
  ASSERT_TRUE(run.result.status.is_ok());

  Result<std::vector<BusTraffic>> traffic = analyze_trace(
      refined, run.kernel->trace(), run.result.end_time);
  ASSERT_TRUE(traffic.is_ok()) << traffic.status();
  ASSERT_EQ(traffic->size(), 1u);
  const BusTraffic& bus = (*traffic)[0];
  EXPECT_EQ(bus.bus, "B");

  // CH0: P writes 16-bit X in 2 words; CH1: P reads X back (1 dummy + 2
  // data); CH2/CH3: 22-bit MEM writes in 3 words each.
  ASSERT_EQ(bus.channels.size(), 4u);
  EXPECT_EQ(bus.find("CH0")->words, 2);
  EXPECT_EQ(bus.find("CH0")->transactions, 1);
  EXPECT_EQ(bus.find("CH1")->words, 3);
  EXPECT_EQ(bus.find("CH1")->transactions, 1);
  EXPECT_EQ(bus.find("CH2")->words, 3);
  EXPECT_EQ(bus.find("CH3")->words, 3);
  for (const ChannelTraffic& ct : bus.channels) {
    EXPECT_EQ(ct.residual_words, 0) << ct.channel;
    EXPECT_EQ(ct.transactions, 1) << ct.channel;
  }
  EXPECT_EQ(bus.total_words, 11);
  EXPECT_GT(bus.utilization, 0.5);  // 11 words * 2 cyc in 21 cycles
}

TEST(TraceAnalyzerTest, FlcKernelCounts128TransactionsPerChannel) {
  System refined = suite::make_flc_kernel();
  refined.find_bus("B")->width = 8;
  ProtocolGenOptions options;
  options.arbitrate = true;
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());

  sim::SimulationRun run = sim::simulate(refined, 10'000'000, /*trace=*/true);
  ASSERT_TRUE(run.result.status.is_ok());
  Result<std::vector<BusTraffic>> traffic = analyze_trace(
      refined, run.kernel->trace(), run.result.end_time);
  ASSERT_TRUE(traffic.is_ok()) << traffic.status();

  const BusTraffic& bus = (*traffic)[0];
  const ChannelTraffic* ch1 = bus.find("ch1");
  const ChannelTraffic* ch2 = bus.find("ch2");
  ASSERT_NE(ch1, nullptr);
  ASSERT_NE(ch2, nullptr);
  EXPECT_EQ(ch1->transactions, 128);  // every trru0 element written
  EXPECT_EQ(ch2->transactions, 128);  // every trru2 element read
  EXPECT_EQ(ch1->residual_words, 0);
  EXPECT_EQ(ch2->residual_words, 0);
  EXPECT_EQ(ch1->words, 128 * 3);  // 23-bit message over 8 lines
  EXPECT_EQ(ch2->words, 128 * 3);  // 1 addr word + 2 data words
  EXPECT_LT(ch1->first_word_time, ch1->last_word_time);
}

TEST(TraceAnalyzerTest, StrobeProtocolsUnsupported) {
  System refined = suite::make_fig3_system();
  ProtocolGenOptions options;
  options.protocol = ProtocolKind::kHalfHandshake;
  options.arbitrate = true;
  ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());
  sim::SimulationRun run = sim::simulate(refined, 1'000'000, /*trace=*/true);
  Result<std::vector<BusTraffic>> traffic = analyze_trace(
      refined, run.kernel->trace(), run.result.end_time);
  EXPECT_EQ(traffic.status().code(), StatusCode::kUnsupported);
}

TEST(TraceAnalyzerTest, UngeneratedBusesIgnored) {
  System system = suite::make_fig3_system();
  system.find_bus("B")->width = 0;  // not generated
  Result<std::vector<BusTraffic>> traffic = analyze_trace(system, {}, 100);
  ASSERT_TRUE(traffic.is_ok());
  EXPECT_TRUE(traffic->empty());
}

// ---- crafted traces: ID attribution corner cases ----------------------
// The analyzer used to sample whatever ID it last saw in storage order,
// so an ID committed in the same delta as its START but stored after it
// was silently charged to the previous channel -- and a START with no
// matching channel for the effective ID was misattributed instead of
// reported. (An *absent* ID entry is not an error by itself: the kernel
// traces value changes only, so it means the ID lines still hold 0.)

/// Two write channels on a generated 8-bit full-handshake bus; no
/// processes/procedures needed because analyze_trace reads only the bus
/// structure. IDs are 1 and 2 -- deliberately no channel at ID 0.
System make_two_channel_bus() {
  System s("crafted");
  Channel ch0;
  ch0.name = "CH0";
  ch0.dir = ChannelDir::kWrite;
  ch0.data_bits = 8;
  ch0.bus = "B";
  ch0.id = 1;
  s.add_channel(std::move(ch0));
  Channel ch1 = *s.find_channel("CH0");
  ch1.name = "CH1";
  ch1.id = 2;
  s.add_channel(std::move(ch1));

  BusGroup bus;
  bus.name = "B";
  bus.channel_names = {"CH0", "CH1"};
  bus.width = 8;
  bus.protocol = ProtocolKind::kFullHandshake;
  bus.id_bits = 2;
  bus.control_lines = 2;
  s.add_bus(std::move(bus));
  return s;
}

sim::TraceEntry entry(std::uint64_t time, std::uint64_t delta,
                      const char* field, std::uint64_t value, int width) {
  return sim::TraceEntry{time, delta, sim::FieldKey{"B", field},
                         BitVector::from_uint(width, value)};
}

TEST(TraceAnalyzerTest, StartBeforeAnyIdIsAnError) {
  System s = make_two_channel_bus();
  // START rises at t=1 with no ID entry in the trace, so the ID lines
  // still hold their initial 0 -- and no channel here has ID 0: the word
  // cannot be attributed.
  std::vector<sim::TraceEntry> trace = {
      entry(1, 0, "START", 1, 1),
      entry(2, 0, "START", 0, 1),
  };
  Result<std::vector<BusTraffic>> traffic = analyze_trace(s, trace, 10);
  ASSERT_FALSE(traffic.is_ok());
  EXPECT_EQ(traffic.status().code(), StatusCode::kSimulationError);
}

TEST(TraceAnalyzerTest, SameDeltaIdAndStartAttributeCorrectly) {
  System s = make_two_channel_bus();
  // ID=2 and START=1 commit in the same (time, delta) batch, with the
  // START stored *before* the ID -- simultaneous commits have no causal
  // order, so the batch's ID update must win either way.
  std::vector<sim::TraceEntry> trace = {
      entry(3, 0, "START", 1, 1),
      entry(3, 0, "ID", 2, 2),
      entry(4, 0, "START", 0, 1),
      entry(5, 0, "START", 1, 1),
      entry(6, 0, "START", 0, 1),
  };
  Result<std::vector<BusTraffic>> traffic = analyze_trace(s, trace, 10);
  ASSERT_TRUE(traffic.is_ok()) << traffic.status();
  ASSERT_EQ(traffic->size(), 1u);
  const BusTraffic& bus = (*traffic)[0];
  // Both words belong to CH1: the first by the same-delta ID commit, the
  // second because the ID lines still hold 2.
  EXPECT_EQ(bus.find("CH0")->words, 0);
  EXPECT_EQ(bus.find("CH1")->words, 2);
  EXPECT_EQ(bus.find("CH1")->transactions, 2);  // one word per message
}

}  // namespace
}  // namespace ifsyn::protocol
