// Procedure synthesis (Sec. 4 step 3): message framing into words, the
// Fig. 4 loop form, ragged tails, requester/server pairs for every
// channel shape.
#include "protocol/procedure_synthesis.hpp"

#include <gtest/gtest.h>

#include "spec/printer.hpp"

namespace ifsyn::protocol {
namespace {

using namespace spec;

WireContext ctx8() {
  return WireContext{"B", 8, 2, ProtocolKind::kFullHandshake, 2};
}

Channel scalar_write_channel() {
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "X";
  ch.dir = ChannelDir::kWrite;
  ch.data_bits = 16;
  ch.id = 0;
  return ch;
}

Channel array_read_channel() {
  Channel ch;
  ch.name = "ch2";
  ch.accessor = "CONV_R2";
  ch.variable = "trru2";
  ch.dir = ChannelDir::kRead;
  ch.data_bits = 16;
  ch.addr_bits = 7;
  ch.id = 1;
  return ch;
}

TEST(ProcedureSynthesisTest, Names) {
  Channel w = scalar_write_channel();
  Channel r = array_read_channel();
  EXPECT_EQ(send_proc_name(w), "SendCH0");
  EXPECT_EQ(receive_proc_name(w), "ReceiveCH0");
  EXPECT_EQ(serve_proc_name(w), "ServeCH0");
  EXPECT_EQ(requester_proc_name(w), "SendCH0");
  EXPECT_EQ(requester_proc_name(r), "Receivech2");
}

TEST(ProcedureSynthesisTest, EvenMessageUsesFig4Loop) {
  // 16 bits over 8 lines: exactly Fig. 4's `for J in 1 to 2 loop` with
  // the slice bounds 8*J-1 downto 8*(J-1).
  Block words = emit_send_words(ctx8(), "txdata", 16);
  const std::string text = print_block(words);
  EXPECT_NE(text.find("for J in 1 to 2 loop"), std::string::npos) << text;
  EXPECT_NE(text.find("txdata(((8 * J) - 1) downto (8 * (J - 1)))"),
            std::string::npos);
  // No tail: exactly one top-level statement (the loop).
  EXPECT_EQ(words.size(), 1u);
}

TEST(ProcedureSynthesisTest, RaggedMessageAppendsTailWord) {
  // 23 bits over 8 lines: 2 full words + a 7-bit tail.
  Block words = emit_send_words(ctx8(), "msg", 23);
  const std::string text = print_block(words);
  EXPECT_NE(text.find("for J in 1 to 2 loop"), std::string::npos);
  EXPECT_NE(text.find("msg(22 downto 16)"), std::string::npos) << text;
}

TEST(ProcedureSynthesisTest, MessageSmallerThanBusIsSingleUnrolledWord) {
  WireContext wide{"B", 23, 1, ProtocolKind::kFullHandshake, 2};
  Block words = emit_send_words(wide, "msg", 16);
  const std::string text = print_block(words);
  EXPECT_EQ(text.find("for J"), std::string::npos);
  EXPECT_NE(text.find("msg(15 downto 0)"), std::string::npos);
}

TEST(ProcedureSynthesisTest, ReceiveWordsMirrorSendSlices) {
  ExprPtr guard = eq(sig("B", "ID"), bin("00"));
  Block words = emit_receive_words(ctx8(), "rxdata", 16, guard);
  const std::string text = print_block(words);
  EXPECT_NE(text.find("rxdata(((8 * J) - 1) downto (8 * (J - 1))) := B.DATA"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("(B.ID = \"00\")"), std::string::npos);
}

TEST(ProcedureSynthesisTest, ScalarWriteRequester) {
  SynthesisContext sctx{ctx8(), false, "B"};
  BitVector id = BitVector::from_binary_string("00");
  Procedure proc = make_requester_procedure(sctx, scalar_write_channel(),
                                            nullptr, &id);
  EXPECT_EQ(proc.name, "SendCH0");
  ASSERT_EQ(proc.params.size(), 1u);
  EXPECT_EQ(proc.params[0].name, "txdata");
  EXPECT_EQ(proc.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(proc.params[0].type, Type::bits(16));
  const std::string text = print_procedure(proc);
  EXPECT_NE(text.find("B.ID <= \"00\";"), std::string::npos) << text;
  EXPECT_NE(text.find("for J in 1 to 2 loop"), std::string::npos);
}

TEST(ProcedureSynthesisTest, ArrayWriteRequesterPacksAddrAndData) {
  Channel ch = scalar_write_channel();
  ch.name = "CH2";
  ch.variable = "MEM";
  ch.addr_bits = 6;
  SynthesisContext sctx{ctx8(), false, "B"};
  Procedure proc = make_requester_procedure(sctx, ch, nullptr, nullptr);
  ASSERT_EQ(proc.params.size(), 2u);
  EXPECT_EQ(proc.params[0].name, "addr");
  EXPECT_EQ(proc.params[0].type, Type::bits(6));
  EXPECT_EQ(proc.params[1].name, "txdata");
  ASSERT_EQ(proc.locals.size(), 1u);
  EXPECT_EQ(proc.locals[0].type, Type::bits(22));
  const std::string text = print_procedure(proc);
  EXPECT_NE(text.find("msg := (addr & txdata);"), std::string::npos) << text;
}

TEST(ProcedureSynthesisTest, ArrayReadRequesterHasTwoPhases) {
  SynthesisContext sctx{ctx8(), false, "B"};
  ExprPtr guard = eq(sig("B", "ID"), bin("01"));
  BitVector id = BitVector::from_binary_string("01");
  Procedure proc =
      make_requester_procedure(sctx, array_read_channel(), guard, &id);
  ASSERT_EQ(proc.params.size(), 2u);
  EXPECT_EQ(proc.params[0].name, "addr");
  EXPECT_EQ(proc.params[1].name, "rxdata");
  EXPECT_EQ(proc.params[1].dir, ParamDir::kOut);
  const std::string text = print_procedure(proc);
  // Request phase sends the 7-bit address (fits one word: unrolled).
  EXPECT_NE(text.find("addr(6 downto 0)"), std::string::npos) << text;
  // Response phase receives 16 data bits into rxdata.
  EXPECT_NE(text.find("rxdata("), std::string::npos);
}

TEST(ProcedureSynthesisTest, ScalarReadRequesterSendsDummyRequestWord) {
  Channel ch = scalar_write_channel();
  ch.name = "CH1";
  ch.dir = ChannelDir::kRead;
  SynthesisContext sctx{ctx8(), false, "B"};
  BitVector id = BitVector::from_binary_string("01");
  Procedure proc = make_requester_procedure(sctx, ch, nullptr, &id);
  ASSERT_EQ(proc.params.size(), 1u);
  EXPECT_EQ(proc.params[0].name, "rxdata");
  const std::string text = print_procedure(proc);
  EXPECT_NE(text.find("B.DATA <= 0;"), std::string::npos) << text;
}

TEST(ProcedureSynthesisTest, ServerForWriteUnpacksAndStores) {
  Channel ch = scalar_write_channel();
  ch.name = "CH2";
  ch.variable = "MEM";
  ch.addr_bits = 6;
  SynthesisContext sctx{ctx8(), false, "B"};
  Procedure proc = make_server_procedure(
      sctx, ch, nullptr, Type::array(Type::bits(16), 64));
  EXPECT_EQ(proc.name, "ServeCH2");
  EXPECT_TRUE(proc.params.empty());  // servers address the variable by name
  const std::string text = print_procedure(proc);
  EXPECT_NE(text.find("MEM(msg(21 downto 16)) := msg(15 downto 0);"),
            std::string::npos)
      << text;
}

TEST(ProcedureSynthesisTest, ServerForScalarWriteStoresWholeMessage) {
  SynthesisContext sctx{ctx8(), false, "B"};
  Procedure proc = make_server_procedure(sctx, scalar_write_channel(),
                                         nullptr, Type::bits(16));
  const std::string text = print_procedure(proc);
  EXPECT_NE(text.find("X := msg;"), std::string::npos) << text;
}

TEST(ProcedureSynthesisTest, ServerForReadSnapshotsThenStreams) {
  SynthesisContext sctx{ctx8(), false, "B"};
  Procedure proc =
      make_server_procedure(sctx, array_read_channel(), nullptr,
                            Type::array(Type::bits(16), 128));
  const std::string text = print_procedure(proc);
  // Receives the address, waits for the bus turnaround, sends the data.
  EXPECT_NE(text.find("addr("), std::string::npos) << text;
  EXPECT_NE(text.find("wait until (B.START = 0);"), std::string::npos);
  EXPECT_NE(text.find("msg := trru2(addr);"), std::string::npos);
}

TEST(ProcedureSynthesisTest, ArbitrationWrapsRequesterOnly) {
  SynthesisContext sctx{ctx8(), true, "B"};
  Procedure requester = make_requester_procedure(
      sctx, scalar_write_channel(), nullptr, nullptr);
  const std::string req_text = print_procedure(requester);
  EXPECT_NE(req_text.find("acquire B;"), std::string::npos) << req_text;
  EXPECT_NE(req_text.find("release B;"), std::string::npos);

  Procedure server = make_server_procedure(sctx, scalar_write_channel(),
                                           nullptr, Type::bits(16));
  const std::string srv_text = print_procedure(server);
  EXPECT_EQ(srv_text.find("acquire"), std::string::npos) << srv_text;
}

TEST(ProcedureSynthesisTest, ChannelVariableTypeMismatchAsserts) {
  SynthesisContext sctx{ctx8(), false, "B"};
  // Array channel against a scalar variable type.
  EXPECT_THROW(make_server_procedure(sctx, array_read_channel(), nullptr,
                                     Type::bits(16)),
               InternalError);
}

}  // namespace
}  // namespace ifsyn::protocol
