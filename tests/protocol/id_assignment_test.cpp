// ID assignment (Sec. 4 step 2): log2(N) lines, sequential unique IDs,
// guard expressions.
#include "protocol/id_assignment.hpp"

#include <gtest/gtest.h>

namespace ifsyn::protocol {
namespace {

using namespace spec;

System system_with_channels(int n) {
  System s("t");
  s.add_variable(Variable("V", Type::bits(8)));
  Process p;
  p.name = "P";
  s.add_process(std::move(p));
  BusGroup bus;
  bus.name = "B";
  for (int i = 0; i < n; ++i) {
    Channel ch;
    ch.name = "CH" + std::to_string(i);
    ch.accessor = "P";
    ch.variable = "V";
    ch.data_bits = 8;
    s.add_channel(std::move(ch));
    bus.channel_names.push_back("CH" + std::to_string(i));
  }
  s.add_bus(std::move(bus));
  return s;
}

TEST(IdAssignmentTest, IdBitsForChannelCounts) {
  EXPECT_EQ(id_bits_for(1), 0);  // single channel needs no ID lines
  EXPECT_EQ(id_bits_for(2), 1);
  EXPECT_EQ(id_bits_for(4), 2);  // Fig. 3: "require 2 ID lines"
  EXPECT_EQ(id_bits_for(5), 3);
  EXPECT_EQ(id_bits_for(16), 4);
}

TEST(IdAssignmentTest, SequentialIdsInGroupOrder) {
  System s = system_with_channels(4);
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  EXPECT_EQ(s.find_bus("B")->id_bits, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s.find_channel("CH" + std::to_string(i))->id, i);
  }
}

TEST(IdAssignmentTest, IdLiteralEncodesBinary) {
  System s = system_with_channels(4);
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  // "Channel CH0 is assigned the ID \"00\", CH1 ... \"01\" and so on."
  EXPECT_EQ(id_literal(*s.find_channel("CH0"), *s.find_bus("B"))
                .to_binary_string(),
            "00");
  EXPECT_EQ(id_literal(*s.find_channel("CH1"), *s.find_bus("B"))
                .to_binary_string(),
            "01");
  EXPECT_EQ(id_literal(*s.find_channel("CH2"), *s.find_bus("B"))
                .to_binary_string(),
            "10");
  EXPECT_EQ(id_literal(*s.find_channel("CH3"), *s.find_bus("B"))
                .to_binary_string(),
            "11");
}

TEST(IdAssignmentTest, GuardComparesBusIdField) {
  System s = system_with_channels(2);
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  ExprPtr guard = id_guard(*s.find_channel("CH1"), *s.find_bus("B"));
  ASSERT_NE(guard, nullptr);
  EXPECT_EQ(guard->to_string(), "(B.ID = \"1\")");
}

TEST(IdAssignmentTest, SingleChannelHasNoGuard) {
  System s = system_with_channels(1);
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  EXPECT_EQ(s.find_bus("B")->id_bits, 0);
  EXPECT_EQ(id_guard(*s.find_channel("CH0"), *s.find_bus("B")), nullptr);
}

TEST(IdAssignmentTest, IdempotentReassignment) {
  System s = system_with_channels(3);
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  ASSERT_TRUE(assign_ids(s, *s.find_bus("B")).is_ok());
  EXPECT_EQ(s.find_channel("CH2")->id, 2);
  EXPECT_EQ(s.find_bus("B")->id_bits, 2);
}

TEST(IdAssignmentTest, EmptyBusRejected) {
  System s("t");
  BusGroup bus;
  bus.name = "B";
  BusGroup& added = s.add_bus(std::move(bus));
  EXPECT_EQ(assign_ids(s, added).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ifsyn::protocol
