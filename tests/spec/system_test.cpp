// System container: ownership, lookup, module maps, bus groups, clone,
// structural validation.
#include "spec/system.hpp"

#include <gtest/gtest.h>

namespace ifsyn::spec {
namespace {

System small_system() {
  System s("t");
  s.add_variable(Variable("X", Type::bits(16)));
  s.add_variable(Variable("MEM", Type::array(Type::bits(16), 64)));
  Process p;
  p.name = "P";
  s.add_process(std::move(p));
  Process q;
  q.name = "Q";
  s.add_process(std::move(q));
  return s;
}

TEST(SystemTest, LookupByName) {
  System s = small_system();
  EXPECT_NE(s.find_variable("X"), nullptr);
  EXPECT_NE(s.find_process("Q"), nullptr);
  EXPECT_EQ(s.find_variable("Y"), nullptr);
  EXPECT_EQ(s.find_process("R"), nullptr);
  EXPECT_EQ(s.find_channel("CH0"), nullptr);
}

TEST(SystemTest, DuplicateNamesAssert) {
  System s = small_system();
  EXPECT_THROW(s.add_variable(Variable("X", Type::bits(8))), InternalError);
  Process p;
  p.name = "P";
  EXPECT_THROW(s.add_process(std::move(p)), InternalError);
}

TEST(SystemTest, ModuleMembership) {
  System s = small_system();
  s.add_module(Module{"M1", {"P"}, {"X"}});
  s.add_module(Module{"M2", {"Q"}, {"MEM"}});
  ASSERT_NE(s.module_of_process("P"), nullptr);
  EXPECT_EQ(s.module_of_process("P")->name, "M1");
  EXPECT_EQ(s.module_of_variable("MEM")->name, "M2");
  EXPECT_EQ(s.module_of_process("missing"), nullptr);
}

TEST(SystemTest, AddBusMarksChannels) {
  System s = small_system();
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "X";
  ch.data_bits = 16;
  s.add_channel(std::move(ch));

  BusGroup bus;
  bus.name = "B";
  bus.channel_names = {"CH0"};
  s.add_bus(std::move(bus));

  EXPECT_EQ(s.find_channel("CH0")->bus, "B");
  auto channels = s.channels_of_bus(*s.find_bus("B"));
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0]->name, "CH0");
}

TEST(SystemTest, ChannelMessageBits) {
  Channel ch;
  ch.data_bits = 16;
  ch.addr_bits = 7;
  EXPECT_EQ(ch.message_bits(), 23);
}

TEST(SystemTest, BusGroupWireAccounting) {
  BusGroup bus;
  bus.width = 8;
  bus.control_lines = 2;
  bus.id_bits = 2;
  EXPECT_EQ(bus.total_wires(), 12);
  EXPECT_TRUE(bus.generated());
  EXPECT_FALSE(BusGroup{}.generated());
}

TEST(SystemTest, SignalFieldLookup) {
  Signal sig;
  sig.name = "B";
  sig.fields = {{"START", 1}, {"DONE", 1}, {"ID", 2}, {"DATA", 8}};
  EXPECT_EQ(sig.field("ID")->width, 2);
  EXPECT_EQ(sig.field("NOPE"), nullptr);
  EXPECT_EQ(sig.total_width(), 12);
}

TEST(SystemTest, ValidateAcceptsWellFormed) {
  System s = small_system();
  EXPECT_TRUE(s.validate().is_ok());
}

TEST(SystemTest, ValidateRejectsDanglingChannelEndpoints) {
  System s = small_system();
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "NOSUCH";
  ch.variable = "X";
  ch.data_bits = 16;
  s.add_channel(std::move(ch));
  EXPECT_EQ(s.validate().code(), StatusCode::kInvalidArgument);
}

TEST(SystemTest, ValidateRejectsZeroDataBits) {
  System s = small_system();
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "X";
  ch.data_bits = 0;
  s.add_channel(std::move(ch));
  EXPECT_FALSE(s.validate().is_ok());
}

TEST(SystemTest, ValidateRejectsDuplicateChannelIds) {
  System s = small_system();
  for (int i = 0; i < 2; ++i) {
    Channel ch;
    ch.name = "CH" + std::to_string(i);
    ch.accessor = "P";
    ch.variable = "X";
    ch.data_bits = 16;
    ch.id = 0;  // duplicate
    s.add_channel(std::move(ch));
  }
  BusGroup bus;
  bus.name = "B";
  bus.channel_names = {"CH0", "CH1"};
  s.add_bus(std::move(bus));
  EXPECT_FALSE(s.validate().is_ok());
}

TEST(SystemTest, ValidateRejectsDoublyAssignedEntities) {
  System s = small_system();
  s.add_module(Module{"M1", {"P"}, {}});
  s.add_module(Module{"M2", {"P"}, {}});
  EXPECT_FALSE(s.validate().is_ok());
}

TEST(SystemTest, ValidateRejectsModuleWithUnknownEntity) {
  System s = small_system();
  s.add_module(Module{"M1", {"GHOST"}, {}});
  EXPECT_FALSE(s.validate().is_ok());
}

TEST(SystemTest, CloneIsDeepForContainersSharedForTrees) {
  System s = small_system();
  s.find_process("P")->body = {assign("X", lit(1))};
  System c = s.clone("copy");
  EXPECT_EQ(c.name(), "copy");
  ASSERT_NE(c.find_process("P"), nullptr);
  // Distinct Process objects...
  EXPECT_NE(c.find_process("P"), s.find_process("P"));
  // ...sharing immutable statement nodes.
  EXPECT_EQ(c.find_process("P")->body[0].get(),
            s.find_process("P")->body[0].get());
  // Mutating the clone's membership does not affect the original.
  Process r;
  r.name = "R";
  c.add_process(std::move(r));
  EXPECT_EQ(s.find_process("R"), nullptr);
}

TEST(SystemTest, ProtocolKindNames) {
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kFullHandshake),
               "full-handshake");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kHardwiredPort),
               "hardwired-port");
}

}  // namespace
}  // namespace ifsyn::spec
