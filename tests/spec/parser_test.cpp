// Spec-language parser: declarations, statements, expressions,
// partition-driven channel derivation, bus grouping, error positions --
// and a full Fig. 3 spec that round-trips through synthesis.
#include "spec/parser.hpp"

#include <gtest/gtest.h>

#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "spec/printer.hpp"

namespace ifsyn::spec {
namespace {

System parse_ok(std::string_view source, ParseOptions options = {}) {
  Result<System> result = parse_system(source, options);
  EXPECT_TRUE(result.is_ok()) << result.status();
  return result.is_ok() ? std::move(result).value() : System("failed");
}

Status parse_err(std::string_view source) {
  Result<System> result = parse_system(source);
  EXPECT_FALSE(result.is_ok()) << "expected a parse error";
  return result.status();
}

TEST(ParserTest, MinimalSystem) {
  System s = parse_ok("system tiny;");
  EXPECT_EQ(s.name(), "tiny");
  EXPECT_TRUE(s.variables().empty());
}

TEST(ParserTest, VariableDeclarations) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(16);
    variable N : int;
    variable M : int(16) = -5;
    variable A : array[64] of bits(8);
    variable B2 : array[4] of int(16) = [1, 2, 3];
    variable C : array[3] of bits(8) = 9;
  )");
  EXPECT_EQ(s.find_variable("X")->type, Type::bits(16));
  EXPECT_EQ(s.find_variable("N")->type, Type::integer());
  EXPECT_EQ(s.find_variable("M")->init->get().to_int(), -5);
  EXPECT_EQ(s.find_variable("A")->type, Type::array(Type::bits(8), 64));
  const Value& b2 = *s.find_variable("B2")->init;
  EXPECT_EQ(b2.at(0).to_int(), 1);
  EXPECT_EQ(b2.at(2).to_int(), 3);
  EXPECT_EQ(b2.at(3).to_int(), 0);  // unspecified -> zero
  // Scalar initializer fills every array element.
  EXPECT_EQ(s.find_variable("C")->init->at(2).to_uint(), 9u);
}

TEST(ParserTest, SignalsAndFields) {
  System s = parse_ok(R"(
    system t;
    signal B { START : 1; DONE : 1; ID : 2; DATA : 8; }
    signal STAGE { _ : 4; }
  )");
  const Signal* b = s.find_signal("B");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->field("ID")->width, 2);
  const Signal* stage = s.find_signal("STAGE");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->fields[0].name, "");  // `_` = scalar signal
}

TEST(ParserTest, StatementsRoundTripThroughPrinter) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(16);
    variable MEM : array[64] of bits(16);
    signal B { START : 1; }
    process P {
      variable AD : int(16) = 5;
      wait 3;
      X := 32;
      MEM(AD) := X + 7;
      X[7:0] := 1;
      B.START <= 1;
      wait until B.START = 0;
      wait on B.START;
      if X = 32 { AD := 1; } else if X > 40 { AD := 2; } else { AD := 3; }
      for i in 0 .. 9 { MEM(i) := i * 2; }
      while AD < 10 { AD := AD + 1; }
    }
  )");
  const std::string text = print_process(*s.find_process("P"));
  EXPECT_NE(text.find("X := 32;"), std::string::npos) << text;
  EXPECT_NE(text.find("MEM(AD) := (X + 7);"), std::string::npos);
  EXPECT_NE(text.find("X(7 downto 0) := 1;"), std::string::npos);
  EXPECT_NE(text.find("B.START <= 1;"), std::string::npos);
  EXPECT_NE(text.find("wait until (B.START = 0);"), std::string::npos);
  EXPECT_NE(text.find("wait on B.START;"), std::string::npos);
  EXPECT_NE(text.find("for i in 0 to 9 loop"), std::string::npos);
  EXPECT_NE(text.find("while (AD < 10) loop"), std::string::npos);
}

TEST(ParserTest, OperatorPrecedence) {
  System s = parse_ok(R"(
    system t;
    variable X : int;
    process P {
      X := 1 + 2 * 3;
      X := (1 + 2) * 3;
      X := 10 - 4 - 3;
      X := 7 % 4 + 1;
    }
  )");
  const Block& body = s.find_process("P")->body;
  EXPECT_EQ(body[0]->as<VarAssign>()->value->to_string(), "(1 + (2 * 3))");
  EXPECT_EQ(body[1]->as<VarAssign>()->value->to_string(), "((1 + 2) * 3)");
  EXPECT_EQ(body[2]->as<VarAssign>()->value->to_string(), "((10 - 4) - 3)");
  EXPECT_EQ(body[3]->as<VarAssign>()->value->to_string(), "((7 mod 4) + 1)");
}

TEST(ParserTest, LogicalAndComparisonOperators) {
  System s = parse_ok(R"(
    system t;
    signal B { START : 1; ID : 2; }
    variable X : int;
    process P {
      wait until B.START = 1 && B.ID = 2;
      X := !(1 > 2) || 3 /= 4;
      X := 5 and 3 or 1 xor 2;
      X := 1 & 0;
    }
  )");
  const Block& body = s.find_process("P")->body;
  EXPECT_EQ(body[0]->as<WaitUntil>()->cond->to_string(),
            "((B.START = 1) and (B.ID = 2))");
  EXPECT_EQ(body[3]->as<VarAssign>()->value->to_string(), "(1 & 0)");
}

TEST(ParserTest, NumericLiteralBases) {
  System s = parse_ok(R"(
    system t;
    variable X : int;
    process P { X := 0xff + 0b101 + 1_000; }
  )");
  auto folded = const_eval(*s.find_process("P")->body[0]->as<VarAssign>()->value);
  EXPECT_EQ(folded, 255 + 5 + 1000);
}

TEST(ParserTest, CallsWithOutArguments) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(8);
    process P {
      Helper(3 + 4, out X);
    }
  )");
  const auto* call_stmt = s.find_process("P")->body[0]->as<ProcCall>();
  ASSERT_NE(call_stmt, nullptr);
  EXPECT_EQ(call_stmt->proc, "Helper");
  ASSERT_EQ(call_stmt->args.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<ExprPtr>(call_stmt->args[0]));
  EXPECT_TRUE(std::holds_alternative<LValue>(call_stmt->args[1]));
}

TEST(ParserTest, CallVsArrayAssignDisambiguation) {
  System s = parse_ok(R"(
    system t;
    variable A : array[4] of bits(8);
    process P {
      A(2) := 7;      // array element assignment
      Notify(2);      // procedure call
    }
  )");
  EXPECT_NE(s.find_process("P")->body[0]->as<VarAssign>(), nullptr);
  EXPECT_NE(s.find_process("P")->body[1]->as<ProcCall>(), nullptr);
}

TEST(ParserTest, ModulesDeriveChannels) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(16);
    process P { X := 1; }
    module M1 { process P; }
    module M2 { variable X; }
  )");
  ASSERT_EQ(s.channels().size(), 1u);
  EXPECT_EQ(s.channels()[0]->name, "CH0");
  EXPECT_EQ(s.channels()[0]->accessor, "P");
  EXPECT_EQ(s.channels()[0]->variable, "X");
}

TEST(ParserTest, BusGroupingAllAndExplicit) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(16);
    variable Y : bits(8);
    process P { X := 1; Y := 2; }
    module M1 { process P; }
    module M2 { variable X; variable Y; }
    bus B { channels all; width 8; }
  )");
  const BusGroup* bus = s.find_bus("B");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->channel_names.size(), 2u);
  EXPECT_EQ(bus->width, 8);
}

TEST(ParserTest, BusProtocolSelection) {
  System s = parse_ok(R"(
    system t;
    variable X : bits(16);
    process P { X := 1; }
    module M1 { process P; }
    module M2 { variable X; }
    bus B { channels CH0; protocol half; }
  )");
  EXPECT_EQ(s.find_bus("B")->protocol, ProtocolKind::kHalfHandshake);
}

TEST(ParserTest, RestartingProcessAndLoop) {
  System s = parse_ok(R"(
    system t;
    signal S { _ : 1; }
    process SERVER restarts {
      wait on S;
    }
    process LOOPER {
      loop { wait 5; }
    }
  )");
  EXPECT_TRUE(s.find_process("SERVER")->restarts);
  EXPECT_NE(s.find_process("LOOPER")->body[0]->as<ForeverStmt>(), nullptr);
}

TEST(ParserTest, AcquireReleaseStatements) {
  System s = parse_ok(R"(
    system t;
    process P { acquire B; release B; }
  )");
  EXPECT_TRUE(s.find_process("P")->body[0]->as<BusLock>()->acquire);
  EXPECT_FALSE(s.find_process("P")->body[1]->as<BusLock>()->acquire);
}

// ---- error reporting ----

TEST(ParserTest, ErrorsCarryPositions) {
  Status status = parse_err("system t;\nvariable X bits(8);");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();
}

TEST(ParserTest, RejectsUnknownProtocol) {
  Status status = parse_err(R"(
    system t;
    variable X : bits(8);
    process P { X := 1; }
    module M1 { process P; }
    module M2 { variable X; }
    bus B { channels all; protocol quantum; }
  )");
  EXPECT_NE(status.message().find("unknown protocol"), std::string::npos);
}

TEST(ParserTest, RejectsBusWithUnknownChannel) {
  Status status = parse_err(R"(
    system t;
    bus B { channels CH9; }
  )");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ParserTest, RejectsDoubleGrouping) {
  Status status = parse_err(R"(
    system t;
    variable X : bits(8);
    process P { X := 1; }
    module M1 { process P; }
    module M2 { variable X; }
    bus B1 { channels CH0; }
    bus B2 { channels CH0; }
  )");
  EXPECT_NE(status.message().find("two buses"), std::string::npos);
}

TEST(ParserTest, RejectsGarbageCharacters) {
  EXPECT_FALSE(parse_system("system t; @").is_ok());
}

TEST(ParserTest, RejectsMissingSystemHeader) {
  Status status = parse_err("variable X : bits(8);");
  EXPECT_NE(status.message().find("system"), std::string::npos);
}

// ---- end-to-end: a textual Fig. 3 through synthesis and simulation ----

constexpr const char* kFig3Source = R"(
  // The paper's Fig. 3 as a spec file.
  system fig3_text;

  variable X   : bits(16);
  variable MEM : array[64] of bits(16);

  process P {
    variable AD : int(16) = 5;
    wait 1;
    X := 32;
    MEM(AD) := X + 7;
  }

  process Q {
    variable COUNT : int(16) = 77;
    wait 2;
    MEM(60) := COUNT;
  }

  module COMP_P   { process P; }
  module COMP_MEM { variable X; variable MEM; }
  module COMP_Q   { process Q; }

  bus B { channels all; width 8; }
)";

TEST(ParserTest, TextualFig3MatchesBuilderStructure) {
  System s = parse_ok(kFig3Source);
  ASSERT_EQ(s.channels().size(), 4u);
  EXPECT_EQ(s.find_channel("CH0")->variable, "X");
  EXPECT_EQ(s.find_channel("CH0")->dir, ChannelDir::kWrite);
  EXPECT_EQ(s.find_channel("CH1")->dir, ChannelDir::kRead);
  EXPECT_EQ(s.find_channel("CH2")->addr_bits, 6);
  EXPECT_EQ(s.find_bus("B")->width, 8);
}

TEST(ParserTest, TextualFig3SynthesizesAndSimulates) {
  System refined = parse_ok(kFig3Source);
  protocol::ProtocolGenOptions options;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());
  sim::SimulationRun run = sim::simulate(refined);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("X").get().to_uint(), 32u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(5).to_uint(), 39u);
  EXPECT_EQ(run.interpreter->value_of("MEM").at(60).to_uint(), 77u);
}

}  // namespace
}  // namespace ifsyn::spec
