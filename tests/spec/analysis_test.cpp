// Static analysis: const-eval, access counting with loop scaling, signal
// collection, wait-cycle accounting, channel annotation.
#include "spec/analysis.hpp"

#include <gtest/gtest.h>

namespace ifsyn::spec {
namespace {

TEST(ConstEvalTest, ArithmeticFolds) {
  EXPECT_EQ(const_eval(*add(lit(2), mul(lit(3), lit(4)))), 14);
  EXPECT_EQ(const_eval(*sub(lit(10), lit(3))), 7);
  EXPECT_EQ(const_eval(*spec::div(lit(10), lit(3))), 3);
  EXPECT_EQ(const_eval(*mod(lit(10), lit(3))), 1);
  EXPECT_EQ(const_eval(*lt(lit(1), lit(2))), 1);
  EXPECT_EQ(const_eval(*lnot(lit(0))), 1);
}

TEST(ConstEvalTest, VariablesBlockFolding) {
  EXPECT_EQ(const_eval(*add(lit(2), var("x"))), std::nullopt);
  EXPECT_EQ(const_eval(*sig("B", "DONE")), std::nullopt);
}

TEST(ConstEvalTest, DivisionByZeroIsNotConstant) {
  EXPECT_EQ(const_eval(*spec::div(lit(1), lit(0))), std::nullopt);
}

TEST(ConstEvalTest, SmallBitsLiteralsFold) {
  EXPECT_EQ(const_eval(*bin("0101")), 5);
}

TEST(AccessCountTest, StraightLineCounts) {
  Block body{
      assign("X", lit(1)),                        // write X
      assign("Y", add(var("X"), var("X"))),       // 2 reads of X
  };
  AccessCounts counts = count_accesses(body, "X");
  EXPECT_EQ(counts.writes, 1);
  EXPECT_EQ(counts.reads, 2);
  EXPECT_FALSE(counts.lower_bound_only);
}

TEST(AccessCountTest, ForLoopScalesByTripCount) {
  // The FLC pattern: 128 writes of trru0.
  Block body{for_stmt("i", lit(0), lit(127),
                      {assign(lv_idx("trru0", var("i")), var("i"))})};
  AccessCounts counts = count_accesses(body, "trru0");
  EXPECT_EQ(counts.writes, 128);
  EXPECT_EQ(counts.reads, 0);
}

TEST(AccessCountTest, NestedLoopsMultiply) {
  Block body{for_stmt(
      "f", lit(0), lit(14),
      {for_stmt("x", lit(0), lit(127),
                {assign(lv_idx("IMF", var("x")), lit(0))})})};
  EXPECT_EQ(count_accesses(body, "IMF").writes, 15 * 128);
}

TEST(AccessCountTest, IfTakesHeavierBranch) {
  Block body{if_stmt(eq(var("c"), lit(1)),
                     {assign("X", lit(1))},
                     {assign("X", lit(1)), assign("X", lit(2))})};
  EXPECT_EQ(count_accesses(body, "X").writes, 2);
}

TEST(AccessCountTest, ArrayIndexReadsCount) {
  Block body{assign("Y", aref("MEM", var("AD")))};
  EXPECT_EQ(count_accesses(body, "MEM").reads, 1);
  EXPECT_EQ(count_accesses(body, "AD").reads, 1);
}

TEST(AccessCountTest, WhileIsLowerBound) {
  Block body{while_stmt(lt(var("n"), lit(10)), {assign("X", lit(1))})};
  AccessCounts counts = count_accesses(body, "X");
  EXPECT_EQ(counts.writes, 1);
  EXPECT_TRUE(counts.lower_bound_only);
}

TEST(AccessCountTest, DynamicForBoundsAreLowerBound) {
  Block body{for_stmt("i", lit(0), sub(var("LEN"), lit(1)),
                      {assign("X", var("i"))})};
  AccessCounts counts = count_accesses(body, "X");
  EXPECT_EQ(counts.writes, 1);
  EXPECT_TRUE(counts.lower_bound_only);
}

TEST(AccessCountTest, ProcCallArgumentsCount) {
  Block body{call("SendCH0", {ExprPtr(var("X")), LValue(lv("Y"))})};
  EXPECT_EQ(count_accesses(body, "X").reads, 1);
  EXPECT_EQ(count_accesses(body, "Y").writes, 1);
}

TEST(SignalRefTest, CollectsUniqueFields) {
  ExprPtr cond = land(eq(sig("B", "START"), lit(1)),
                      land(eq(sig("B", "ID"), bin("00")),
                           eq(sig("B", "START"), lit(1))));
  auto refs = collect_signal_refs(*cond);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].signal, "B");
  EXPECT_EQ(refs[0].field, "START");
  EXPECT_EQ(refs[1].field, "ID");
}

TEST(SignalRefTest, ExprReadsVariable) {
  ExprPtr e = add(aref("MEM", var("PC")), lit(7));
  EXPECT_TRUE(expr_reads_variable(*e, "MEM"));
  EXPECT_TRUE(expr_reads_variable(*e, "PC"));
  EXPECT_FALSE(expr_reads_variable(*e, "X"));
}

TEST(WaitCyclesTest, SumsAndScales) {
  Block body{
      wait_for(5),
      for_stmt("i", lit(0), lit(9), {wait_for(2)}),
  };
  EXPECT_EQ(wait_cycles(body), 25);
}

TEST(WaitCyclesTest, IfTakesHeavierBranch) {
  Block body{if_stmt(eq(var("c"), lit(1)), {wait_for(3)}, {wait_for(10)})};
  EXPECT_EQ(wait_cycles(body), 10);
}

TEST(OpCountTest, CountsAssignmentsAndOperators) {
  Block body{assign("X", add(var("a"), mul(var("b"), var("c"))))};
  // 1 assignment + 2 operators.
  EXPECT_EQ(op_count(body), 3);
}

TEST(OpCountTest, LoopsScale) {
  Block body{for_stmt("i", lit(0), lit(9), {assign("X", var("i"))})};
  // 10 assignments + 10 index updates.
  EXPECT_EQ(op_count(body), 20);
}

TEST(AnnotateTest, FillsAccessCountsFromBodies) {
  System s("t");
  s.add_variable(Variable("A", Type::array(Type::bits(8), 16)));
  Process p;
  p.name = "P";
  p.body = {for_stmt("i", lit(0), lit(15),
                     {assign(lv_idx("A", var("i")), var("i"))})};
  s.add_process(std::move(p));
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "A";
  ch.dir = ChannelDir::kWrite;
  ch.data_bits = 8;
  ch.addr_bits = 4;
  s.add_channel(std::move(ch));

  ASSERT_TRUE(annotate_channel_accesses(s).is_ok());
  EXPECT_EQ(s.find_channel("CH0")->accesses, 16);
}

TEST(AnnotateTest, RespectsAuthorProvidedCounts) {
  System s("t");
  s.add_variable(Variable("A", Type::bits(8)));
  Process p;
  p.name = "P";
  s.add_process(std::move(p));
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "A";
  ch.data_bits = 8;
  ch.accesses = 99;  // author annotation wins
  s.add_channel(std::move(ch));
  ASSERT_TRUE(annotate_channel_accesses(s).is_ok());
  EXPECT_EQ(s.find_channel("CH0")->accesses, 99);
}

TEST(AnnotateTest, MissingAccessorIsNotFound) {
  System s("t");
  s.add_variable(Variable("A", Type::bits(8)));
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "GHOST";
  ch.variable = "A";
  ch.data_bits = 8;
  s.add_channel(std::move(ch));
  EXPECT_EQ(annotate_channel_accesses(s).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ifsyn::spec
