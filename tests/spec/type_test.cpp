// Type system: widths, address bits, array geometry.
#include "spec/type.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace ifsyn::spec {
namespace {

TEST(TypeTest, BitsScalar) {
  Type t = Type::bits(16);
  EXPECT_TRUE(t.is_scalar());
  EXPECT_FALSE(t.is_array());
  EXPECT_FALSE(t.is_signed());
  EXPECT_EQ(t.scalar_width(), 16);
  EXPECT_EQ(t.array_size(), 1);
  EXPECT_EQ(t.address_bits(), 0);
  EXPECT_EQ(t.total_bits(), 16);
  EXPECT_EQ(t.to_string(), "bit_vector(15 downto 0)");
}

TEST(TypeTest, IntegerIsSigned) {
  Type t = Type::integer();
  EXPECT_TRUE(t.is_signed());
  EXPECT_EQ(t.scalar_width(), 32);
  EXPECT_EQ(t.to_string(), "integer");
  EXPECT_EQ(Type::integer(16).to_string(), "integer<16>");
}

TEST(TypeTest, ArrayGeometry) {
  // The paper's trru arrays: 128 16-bit entries -> 7 address bits.
  Type t = Type::array(Type::bits(16), 128);
  EXPECT_TRUE(t.is_array());
  EXPECT_EQ(t.scalar_width(), 16);
  EXPECT_EQ(t.array_size(), 128);
  EXPECT_EQ(t.address_bits(), 7);
  EXPECT_EQ(t.total_bits(), 2048);
  EXPECT_EQ(t.element(), Type::bits(16));
}

TEST(TypeTest, Fig3MemAddressBits) {
  // MEM : array(0 to 63) of 16 bits -> 6 address bits.
  Type mem = Type::array(Type::bits(16), 64);
  EXPECT_EQ(mem.address_bits(), 6);
}

TEST(TypeTest, NonPowerOfTwoArraySize) {
  // InitMemberFunct has 1920 entries -> ceil(log2 1920) = 11 bits.
  Type t = Type::array(Type::integer(16), 1920);
  EXPECT_EQ(t.address_bits(), 11);
}

TEST(TypeTest, SignedArrayElements) {
  Type t = Type::array(Type::integer(16), 4);
  EXPECT_TRUE(t.is_signed());
  EXPECT_TRUE(t.element().is_signed());
}

TEST(TypeTest, NestedArraysRejected) {
  Type inner = Type::array(Type::bits(8), 4);
  EXPECT_THROW(Type::array(inner, 4), InternalError);
}

TEST(TypeTest, InvalidSizesRejected) {
  EXPECT_THROW(Type::bits(0), InternalError);
  EXPECT_THROW(Type::integer(-1), InternalError);
  EXPECT_THROW(Type::array(Type::bits(8), 0), InternalError);
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::bits(8), Type::bits(8));
  EXPECT_NE(Type::bits(8), Type::bits(9));
  EXPECT_NE(Type::bits(32), Type::integer(32));
  EXPECT_EQ(Type::array(Type::bits(8), 4), Type::array(Type::bits(8), 4));
  EXPECT_NE(Type::array(Type::bits(8), 4), Type::array(Type::integer(8), 4));
}

/// bits_to_encode is shared between array addressing and protocol
/// generation's ID assignment ("log2(N) lines").
class BitsToEncode : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BitsToEncode, MatchesCeilLog2) {
  const auto [n, expected] = GetParam();
  EXPECT_EQ(bits_to_encode(n), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, BitsToEncode,
    ::testing::Values(std::pair{1, 0}, std::pair{2, 1}, std::pair{3, 2},
                      std::pair{4, 2}, std::pair{5, 3}, std::pair{8, 3},
                      std::pair{9, 4}, std::pair{64, 6}, std::pair{65, 7},
                      std::pair{128, 7}, std::pair{1920, 11},
                      std::pair{2048, 11}, std::pair{2049, 12}));

TEST(TypeTest, BitsToEncodeRejectsNonPositive) {
  EXPECT_THROW(bits_to_encode(0), InternalError);
}

}  // namespace
}  // namespace ifsyn::spec
