// Pseudo-VHDL printer: statements, procedures, processes, systems.
#include "spec/printer.hpp"

#include <gtest/gtest.h>

namespace ifsyn::spec {
namespace {

TEST(PrinterTest, Assignments) {
  EXPECT_EQ(print_stmt(*assign("X", lit(32))), "X := 32;\n");
  EXPECT_EQ(print_stmt(*assign(lv_idx("MEM", var("AD")), add(var("X"), lit(7)))),
            "MEM(AD) := (X + 7);\n");
  EXPECT_EQ(print_stmt(*sig_assign("B", "START", lit(1))),
            "B.START <= 1;\n");
}

TEST(PrinterTest, SliceTargets) {
  StmtPtr s = assign(lv_slice("rxdata", lit(15), lit(8)), sig("B", "DATA"));
  EXPECT_EQ(print_stmt(*s), "rxdata(15 downto 8) := B.DATA;\n");
}

TEST(PrinterTest, Waits) {
  EXPECT_EQ(print_stmt(*wait_until(eq(sig("B", "DONE"), lit(1)))),
            "wait until (B.DONE = 1);\n");
  EXPECT_EQ(print_stmt(*wait_on({{"B", "ID"}, {"B", "START"}})),
            "wait on B.ID, B.START;\n");
  EXPECT_EQ(print_stmt(*wait_for(2)), "wait for 2 cycles;\n");
}

TEST(PrinterTest, ControlFlowIndents) {
  StmtPtr loop = for_stmt("J", lit(1), lit(2), {assign("X", var("J"))});
  EXPECT_EQ(print_stmt(*loop),
            "for J in 1 to 2 loop\n"
            "  X := J;\n"
            "end loop;\n");

  StmtPtr branch = if_stmt(eq(var("c"), lit(1)), {assign("X", lit(1))},
                           {assign("X", lit(2))});
  EXPECT_EQ(print_stmt(*branch),
            "if (c = 1) then\n"
            "  X := 1;\n"
            "else\n"
            "  X := 2;\n"
            "end if;\n");
}

TEST(PrinterTest, ForeverAndWhile) {
  EXPECT_EQ(print_stmt(*forever({wait_for(1)})),
            "loop\n  wait for 1 cycles;\nend loop;\n");
  EXPECT_EQ(print_stmt(*while_stmt(lt(var("n"), lit(4)), {})),
            "while (n < 4) loop\nend loop;\n");
}

TEST(PrinterTest, CallsWithMixedArgs) {
  StmtPtr c = call("SendCH2", {ExprPtr(var("AD")), ExprPtr(add(var("X"), lit(7)))});
  EXPECT_EQ(print_stmt(*c), "SendCH2(AD, (X + 7));\n");
  StmtPtr r = call("ReceiveCH1", {CallArg(lv("Xtemp"))});
  EXPECT_EQ(print_stmt(*r), "ReceiveCH1(Xtemp);\n");
}

TEST(PrinterTest, BusLocks) {
  EXPECT_EQ(print_stmt(*bus_acquire("B")), "acquire B;\n");
  EXPECT_EQ(print_stmt(*bus_release("B")), "release B;\n");
}

TEST(PrinterTest, ProcedureSignature) {
  Procedure p;
  p.name = "SendCH0";
  p.params = {Param{"txdata", ParamDir::kIn, Type::bits(16)}};
  p.locals.emplace_back("msg", Type::bits(23));
  p.body = {assign("msg", lit(0))};
  const std::string text = print_procedure(p);
  EXPECT_NE(text.find("procedure SendCH0(txdata : in bit_vector(15 downto 0)) is"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("variable msg : bit_vector(22 downto 0);"),
            std::string::npos);
  EXPECT_NE(text.find("end SendCH0;"), std::string::npos);
}

TEST(PrinterTest, ProcessRendersLocalsAndBody) {
  Process p;
  p.name = "P";
  p.locals.emplace_back("AD", Type::integer(16));
  p.body = {assign("AD", lit(5))};
  const std::string text = print_process(p);
  EXPECT_NE(text.find("process P"), std::string::npos);
  EXPECT_NE(text.find("variable AD : integer<16>;"), std::string::npos);
  EXPECT_NE(text.find("end process P;"), std::string::npos);
}

TEST(PrinterTest, SystemOverviewListsEverything) {
  System s("demo");
  s.add_variable(Variable("X", Type::bits(16)));
  Signal b;
  b.name = "B";
  b.fields = {{"START", 1}, {"DATA", 8}};
  s.add_signal(std::move(b));
  Process p;
  p.name = "P";
  s.add_process(std::move(p));
  Channel ch;
  ch.name = "CH0";
  ch.accessor = "P";
  ch.variable = "X";
  ch.data_bits = 16;
  s.add_channel(std::move(ch));
  BusGroup bus;
  bus.name = "B";
  bus.channel_names = {"CH0"};
  bus.width = 8;
  s.add_bus(std::move(bus));

  const std::string text = print_system(s);
  EXPECT_NE(text.find("system demo"), std::string::npos);
  EXPECT_NE(text.find("variable X"), std::string::npos);
  EXPECT_NE(text.find("signal B"), std::string::npos);
  EXPECT_NE(text.find("channel CH0"), std::string::npos);
  EXPECT_NE(text.find("bus B {CH0}"), std::string::npos);
  EXPECT_NE(text.find("width=8"), std::string::npos);
}

}  // namespace
}  // namespace ifsyn::spec
