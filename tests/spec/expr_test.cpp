// Expression node construction, downcasts, printing, structural sharing.
#include "spec/expr.hpp"

#include <gtest/gtest.h>

namespace ifsyn::spec {
namespace {

TEST(ExprTest, LiteralNodes) {
  ExprPtr i = lit(42);
  ASSERT_NE(i->as<IntLit>(), nullptr);
  EXPECT_EQ(i->as<IntLit>()->value, 42);
  EXPECT_EQ(i->to_string(), "42");

  ExprPtr b = bin("0010");
  ASSERT_NE(b->as<BitsLit>(), nullptr);
  EXPECT_EQ(b->as<BitsLit>()->value.width(), 4);
  EXPECT_EQ(b->to_string(), "\"0010\"");
}

TEST(ExprTest, VariableAndArrayRefs) {
  ExprPtr v = var("X");
  EXPECT_EQ(v->as<VarRef>()->name, "X");
  ExprPtr a = aref("MEM", var("AD"));
  EXPECT_EQ(a->as<ArrayRef>()->name, "MEM");
  EXPECT_EQ(a->to_string(), "MEM(AD)");
}

TEST(ExprTest, SignalRefPrinting) {
  EXPECT_EQ(sig("B", "START")->to_string(), "B.START");
  EXPECT_EQ(sig("STAGE")->to_string(), "STAGE");
}

TEST(ExprTest, SlicePrintsDownto) {
  // The Fig. 4 word expression: txdata(8*J-1 downto 8*(J-1)).
  ExprPtr word = slice(var("txdata"), sub(mul(lit(8), var("J")), lit(1)),
                       mul(lit(8), sub(var("J"), lit(1))));
  EXPECT_EQ(word->to_string(),
            "txdata(((8 * J) - 1) downto (8 * (J - 1)))");
}

TEST(ExprTest, BinaryOperatorsPrint) {
  EXPECT_EQ(add(lit(1), lit(2))->to_string(), "(1 + 2)");
  EXPECT_EQ(eq(sig("B", "DONE"), lit(1))->to_string(), "(B.DONE = 1)");
  EXPECT_EQ(ne(var("a"), var("b"))->to_string(), "(a /= b)");
  EXPECT_EQ(mod(var("J"), lit(2))->to_string(), "(J mod 2)");
  EXPECT_EQ(land(var("a"), var("b"))->to_string(), "(a and b)");
  EXPECT_EQ(concat(var("hi"), var("lo"))->to_string(), "(hi & lo)");
}

TEST(ExprTest, UnaryOperatorsPrint) {
  EXPECT_EQ(lnot(var("a"))->to_string(), "(not a)");
  EXPECT_EQ(un(UnaryOp::kNeg, lit(5))->to_string(), "(- 5)");
}

TEST(ExprTest, SubtreesAreShared) {
  // Immutable expressions are shared by pointer; rewriting relies on it.
  ExprPtr common = var("X");
  ExprPtr parent = add(common, common);
  const auto* node = parent->as<BinaryExpr>();
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->lhs.get(), node->rhs.get());
  EXPECT_EQ(common.use_count(), 3);  // local + two operand slots
}

TEST(ExprTest, ComparisonFactoriesProduceCorrectOps) {
  EXPECT_EQ(lt(lit(1), lit(2))->as<BinaryExpr>()->op, BinaryOp::kLt);
  EXPECT_EQ(le(lit(1), lit(2))->as<BinaryExpr>()->op, BinaryOp::kLe);
  EXPECT_EQ(gt(lit(1), lit(2))->as<BinaryExpr>()->op, BinaryOp::kGt);
  EXPECT_EQ(ge(lit(1), lit(2))->as<BinaryExpr>()->op, BinaryOp::kGe);
  EXPECT_EQ(lor(lit(1), lit(2))->as<BinaryExpr>()->op, BinaryOp::kLogOr);
}

TEST(ExprTest, AsReturnsNullForOtherKinds) {
  ExprPtr e = lit(1);
  EXPECT_EQ(e->as<VarRef>(), nullptr);
  EXPECT_EQ(e->as<BinaryExpr>(), nullptr);
}

}  // namespace
}  // namespace ifsyn::spec
