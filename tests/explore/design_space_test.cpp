#include "explore/design_space.hpp"

#include <gtest/gtest.h>

#include "bus/bus_generator.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

namespace ifsyn::explore {
namespace {

using suite::FlcCalibration;

struct FlcFixture {
  spec::System system = suite::make_flc_kernel();
  std::unique_ptr<estimate::PerformanceEstimator> estimator;

  FlcFixture() {
    EXPECT_TRUE(spec::annotate_channel_accesses(system).is_ok());
    estimator = std::make_unique<estimate::PerformanceEstimator>(system);
    estimator->set_compute_cycles("EVAL_R3",
                                  FlcCalibration::kEvalR3ComputeCycles);
    estimator->set_compute_cycles("CONV_R2",
                                  FlcCalibration::kConvR2ComputeCycles);
  }
};

TEST(DesignSpaceTest, EnumeratesGroupingMajorThenProtocolThenWidth) {
  FlcFixture flc;
  DesignSpaceOptions options;
  options.protocols = {spec::ProtocolKind::kFullHandshake,
                       spec::ProtocolKind::kHalfHandshake};
  DesignSpace space(flc.system, *flc.estimator, options);
  ASSERT_TRUE(space.validate().is_ok());

  // FLC kernel: largest message 23 bits => widths 1..23, one grouping.
  EXPECT_EQ(space.width_range(), std::make_pair(1, 23));
  const std::vector<DesignPoint> points = space.enumerate();
  ASSERT_EQ(points.size(), 2u * 23u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);  // index == enumeration order, always
  }
  EXPECT_EQ(points[0].protocol, spec::ProtocolKind::kFullHandshake);
  EXPECT_EQ(points[0].width, 1);
  EXPECT_EQ(points[22].width, 23);
  EXPECT_EQ(points[23].protocol, spec::ProtocolKind::kHalfHandshake);
  EXPECT_EQ(points[23].width, 1);
}

TEST(DesignSpaceTest, GroupingPlansCoverAlternativesWithoutDuplicates) {
  FlcFixture flc;
  // as-grouped = {ch1, ch2} on one bus; single-bus duplicates it and is
  // dropped; per-accessor and per-channel both split into {ch1}, {ch2}
  // and collapse into one plan.
  const std::vector<GroupingPlan> plans =
      make_grouping_plans(flc.system, /*alternatives=*/true);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].name, "as-grouped");
  EXPECT_EQ(plans[0].groups.size(), 1u);
  EXPECT_EQ(plans[1].name, "per-accessor");
  EXPECT_EQ(plans[1].groups.size(), 2u);

  const std::vector<GroupingPlan> just_grouped =
      make_grouping_plans(flc.system, /*alternatives=*/false);
  ASSERT_EQ(just_grouped.size(), 1u);
  EXPECT_EQ(just_grouped[0].name, "as-grouped");
  EXPECT_EQ(just_grouped[0].bus_names[0], "B");
}

TEST(DesignSpaceTest, GroupSignatureIsOrderInsensitive) {
  EXPECT_EQ(GroupingPlan::group_signature({"ch2", "ch1"}),
            GroupingPlan::group_signature({"ch1", "ch2"}));
  EXPECT_NE(GroupingPlan::group_signature({"ch1"}),
            GroupingPlan::group_signature({"ch1", "ch2"}));
}

TEST(DesignSpaceTest, RejectsHardwiredAndEmptyProtocolLists) {
  FlcFixture flc;
  DesignSpaceOptions hardwired;
  hardwired.protocols = {spec::ProtocolKind::kHardwiredPort};
  EXPECT_EQ(DesignSpace(flc.system, *flc.estimator, hardwired)
                .validate()
                .code(),
            StatusCode::kInvalidArgument);

  DesignSpaceOptions empty;
  empty.protocols.clear();
  EXPECT_EQ(DesignSpace(flc.system, *flc.estimator, empty).validate().code(),
            StatusCode::kInvalidArgument);
}

TEST(DesignSpaceTest, Eq1PrunerOnlySkipsTrulyInfeasibleWidths) {
  FlcFixture flc;
  DesignSpaceOptions options;
  DesignSpace space(flc.system, *flc.estimator, options);
  ASSERT_TRUE(space.validate().is_ok());

  // Soundness: every pruned width must also fail the full Eq. 1 check.
  Eq1LowerBoundPruner pruner;
  bus::BusGenerator generator(flc.system, *flc.estimator);
  const spec::BusGroup* group = flc.system.find_bus("B");
  ASSERT_NE(group, nullptr);
  int pruned = 0;
  for (const DesignPoint& point : space.enumerate()) {
    if (!pruner.should_skip(space, point)) continue;
    ++pruned;
    bus::BusGenOptions gen_options;
    gen_options.protocol = point.protocol;
    EXPECT_FALSE(
        generator.evaluate_width(*group, point.width, gen_options).feasible)
        << "pruner skipped feasible width " << point.width;
  }
  EXPECT_GT(pruned, 0);  // the bound does fire on narrow widths
}

}  // namespace
}  // namespace ifsyn::explore
