#include "explore/estimation_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "explore/work_queue.hpp"

namespace ifsyn::explore {
namespace {

EstimationKey key_for(const std::string& sig, int width) {
  EstimationKey key;
  key.group_signature = sig;
  key.width = width;
  key.protocol = spec::ProtocolKind::kFullHandshake;
  return key;
}

TEST(EstimationCacheTest, ComputesOncePerKey) {
  EstimationCache cache;
  int calls = 0;
  auto compute = [&calls] {
    ++calls;
    GroupEstimate est;
    est.total_wires = 42;
    return est;
  };
  EXPECT_EQ(cache.get_or_compute(key_for("a+b", 8), compute).total_wires, 42);
  EXPECT_EQ(cache.get_or_compute(key_for("a+b", 8), compute).total_wires, 42);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EstimationCacheTest, DistinctKeysComputeSeparately) {
  EstimationCache cache;
  int calls = 0;
  auto compute = [&calls] {
    ++calls;
    return GroupEstimate{};
  };
  cache.get_or_compute(key_for("a+b", 8), compute);
  cache.get_or_compute(key_for("a+b", 9), compute);    // width differs
  cache.get_or_compute(key_for("a+c", 8), compute);    // group differs
  EstimationKey half = key_for("a+b", 8);
  half.protocol = spec::ProtocolKind::kHalfHandshake;  // protocol differs
  cache.get_or_compute(half, compute);
  EstimationKey delayed = key_for("a+b", 8);
  delayed.fixed_delay_cycles = 5;                      // delay differs
  cache.get_or_compute(delayed, compute);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(EstimationCacheTest, ConcurrentRequestsShareOneComputation) {
  EstimationCache cache;
  std::atomic<int> calls{0};
  constexpr std::size_t kLookups = 64;
  std::vector<int> results(kLookups);
  run_indexed(kLookups, /*threads=*/8, [&](std::size_t i) {
    const GroupEstimate est =
        cache.get_or_compute(key_for("shared", 4), [&calls] {
          ++calls;
          GroupEstimate e;
          e.total_wires = 7;
          return e;
        });
    results[i] = est.total_wires;
  });
  EXPECT_EQ(calls.load(), 1);
  for (int wires : results) EXPECT_EQ(wires, 7);
  // The counters are deterministic: one miss, everything else hits.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kLookups - 1);
}

TEST(EstimationCacheTest, ThrowingComputePropagatesAndDoesNotPoison) {
  // Regression: a throwing compute() used to abandon the owner's promise,
  // so every thread racing on the key blocked forever on the shared
  // future. The owner must rethrow, waiters must see the exception, and
  // the entry must be erased so a later attempt recomputes.
  EstimationCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   key_for("boom", 8),
                   []() -> GroupEstimate {
                     throw std::runtime_error("estimator failed");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // poisoned entry was erased

  int calls = 0;
  const GroupEstimate est =
      cache.get_or_compute(key_for("boom", 8), [&calls] {
        ++calls;
        GroupEstimate e;
        e.total_wires = 11;
        return e;
      });
  EXPECT_EQ(est.total_wires, 11);
  EXPECT_EQ(calls, 1);
}

TEST(EstimationCacheTest, ConcurrentThrowingComputeUnblocksAllWaiters) {
  // The deadlock scenario: many threads race on one key while the owner's
  // compute throws. Every lookup must return (either with the owner's
  // exception or, after the erase, with a freshly computed value) instead
  // of blocking forever.
  EstimationCache cache;
  std::atomic<int> calls{0};
  std::atomic<int> failures{0};
  std::atomic<int> successes{0};
  constexpr std::size_t kLookups = 64;
  run_indexed(kLookups, /*threads=*/8, [&](std::size_t) {
    try {
      const GroupEstimate est =
          cache.get_or_compute(key_for("flaky", 4), [&calls] {
            if (calls.fetch_add(1) == 0) {
              throw std::runtime_error("first compute fails");
            }
            GroupEstimate e;
            e.total_wires = 9;
            return e;
          });
      EXPECT_EQ(est.total_wires, 9);
      ++successes;
    } catch (const std::runtime_error&) {
      ++failures;
    }
  });
  EXPECT_EQ(failures.load() + successes.load(),
            static_cast<int>(kLookups));
  EXPECT_GE(failures.load(), 1);  // at least the owner saw the exception
}

// ---- shared-store shape: scope qualification and the LRU bound --------

TEST(EstimationCacheTest, ScopeSeparatesIdenticalSignatures) {
  EstimationCache cache;
  int calls = 0;
  auto compute_wires = [&calls](int wires) {
    return [&calls, wires] {
      ++calls;
      GroupEstimate est;
      est.total_wires = wires;
      return est;
    };
  };
  EstimationKey spec_a = key_for("a+b", 8);
  spec_a.scope = "spec-hash-A";
  EstimationKey spec_b = key_for("a+b", 8);
  spec_b.scope = "spec-hash-B";
  // Same group signature from two different specs must not collide.
  EXPECT_EQ(cache.get_or_compute(spec_a, compute_wires(10)).total_wires, 10);
  EXPECT_EQ(cache.get_or_compute(spec_b, compute_wires(20)).total_wires, 20);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get_or_compute(spec_a, compute_wires(99)).total_wires, 10);
  EXPECT_EQ(calls, 2);
}

TEST(EstimationCacheTest, TinyCapacityEvictsLeastRecentlyUsed) {
  obs::MetricsRegistry registry;
  EstimationCache cache(&registry.counter("h"), &registry.counter("m"),
                        &registry.counter("e"), /*capacity=*/2);
  int calls = 0;
  auto compute = [&calls] {
    ++calls;
    return GroupEstimate{};
  };
  cache.get_or_compute(key_for("a", 1), compute);
  cache.get_or_compute(key_for("b", 1), compute);
  cache.get_or_compute(key_for("a", 1), compute);  // a is now MRU
  cache.get_or_compute(key_for("c", 1), compute);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(calls, 3);
  // a survived its touch; b recomputes.
  cache.get_or_compute(key_for("a", 1), compute);
  EXPECT_EQ(calls, 3);
  cache.get_or_compute(key_for("b", 1), compute);
  EXPECT_EQ(calls, 4);
}

TEST(EstimationCacheTest, EvictedEntriesRecomputeCorrectValues) {
  // Hammer a capacity-1 cache across threads: every lookup must still
  // return the key's correct value no matter how eviction interleaves.
  EstimationCache cache(nullptr, nullptr, nullptr, /*capacity=*/1);
  constexpr std::size_t kLookups = 128;
  run_indexed(kLookups, /*threads=*/8, [&](std::size_t i) {
    const int width = static_cast<int>(i % 5);
    const GroupEstimate est =
        cache.get_or_compute(key_for("g", width), [width] {
          GroupEstimate e;
          e.total_wires = width * 100;
          return e;
        });
    EXPECT_EQ(est.total_wires, width * 100);
  });
  EXPECT_LE(cache.size(), 2u);  // capacity plus at most the in-flight entry
}

TEST(WorkQueueTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> touched(257);
    for (auto& t : touched) t = 0;
    run_indexed(touched.size(), threads,
                [&](std::size_t i) { ++touched[i]; });
    for (std::size_t i = 0; i < touched.size(); ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "index " << i << " at " << threads
                                      << " threads";
    }
  }
}

}  // namespace
}  // namespace ifsyn::explore
