#include "explore/estimation_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "explore/work_queue.hpp"

namespace ifsyn::explore {
namespace {

EstimationKey key_for(const std::string& sig, int width) {
  EstimationKey key;
  key.group_signature = sig;
  key.width = width;
  key.protocol = spec::ProtocolKind::kFullHandshake;
  return key;
}

TEST(EstimationCacheTest, ComputesOncePerKey) {
  EstimationCache cache;
  int calls = 0;
  auto compute = [&calls] {
    ++calls;
    GroupEstimate est;
    est.total_wires = 42;
    return est;
  };
  EXPECT_EQ(cache.get_or_compute(key_for("a+b", 8), compute).total_wires, 42);
  EXPECT_EQ(cache.get_or_compute(key_for("a+b", 8), compute).total_wires, 42);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EstimationCacheTest, DistinctKeysComputeSeparately) {
  EstimationCache cache;
  int calls = 0;
  auto compute = [&calls] {
    ++calls;
    return GroupEstimate{};
  };
  cache.get_or_compute(key_for("a+b", 8), compute);
  cache.get_or_compute(key_for("a+b", 9), compute);    // width differs
  cache.get_or_compute(key_for("a+c", 8), compute);    // group differs
  EstimationKey half = key_for("a+b", 8);
  half.protocol = spec::ProtocolKind::kHalfHandshake;  // protocol differs
  cache.get_or_compute(half, compute);
  EstimationKey delayed = key_for("a+b", 8);
  delayed.fixed_delay_cycles = 5;                      // delay differs
  cache.get_or_compute(delayed, compute);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(EstimationCacheTest, ConcurrentRequestsShareOneComputation) {
  EstimationCache cache;
  std::atomic<int> calls{0};
  constexpr std::size_t kLookups = 64;
  std::vector<int> results(kLookups);
  run_indexed(kLookups, /*threads=*/8, [&](std::size_t i) {
    const GroupEstimate est =
        cache.get_or_compute(key_for("shared", 4), [&calls] {
          ++calls;
          GroupEstimate e;
          e.total_wires = 7;
          return e;
        });
    results[i] = est.total_wires;
  });
  EXPECT_EQ(calls.load(), 1);
  for (int wires : results) EXPECT_EQ(wires, 7);
  // The counters are deterministic: one miss, everything else hits.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kLookups - 1);
}

TEST(WorkQueueTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> touched(257);
    for (auto& t : touched) t = 0;
    run_indexed(touched.size(), threads,
                [&](std::size_t i) { ++touched[i]; });
    for (std::size_t i = 0; i < touched.size(); ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "index " << i << " at " << threads
                                      << " threads";
    }
  }
}

}  // namespace
}  // namespace ifsyn::explore
