#include "explore/pareto.hpp"

#include <gtest/gtest.h>

namespace ifsyn::explore {
namespace {

TEST(ParetoTest, KeepsOnlyNonDominatedSortedByWires) {
  ParetoFront front = ParetoFront::build({
      {0, 26, 1024},  // widest, fastest
      {1, 12, 1536},
      {2, 15, 1280},
      {3, 20, 1280},  // dominated by {2}: more wires, same clocks
      {4, 30, 1024},  // dominated by {0}: more wires, same clocks
      {5, 15, 2000},  // dominated by {2}: same wires, more clocks
  });
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front.entries()[0].point_index, 1u);
  EXPECT_EQ(front.entries()[1].point_index, 2u);
  EXPECT_EQ(front.entries()[2].point_index, 0u);
}

TEST(ParetoTest, TieOnBothObjectivesKeepsLowestIndex) {
  ParetoFront front = ParetoFront::build({
      {7, 10, 500},
      {3, 10, 500},
  });
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.entries()[0].point_index, 3u);
}

TEST(ParetoTest, KneeIsTheClockMinimum) {
  ParetoFront front = ParetoFront::build({
      {0, 12, 1536},
      {1, 15, 1280},
      {2, 26, 1024},
  });
  ASSERT_NE(front.knee(), nullptr);
  EXPECT_EQ(front.knee()->point_index, 2u);
  EXPECT_EQ(front.knee()->worst_case_clocks, 1024);
}

TEST(ParetoTest, EmptyFront) {
  ParetoFront front = ParetoFront::build({});
  EXPECT_TRUE(front.empty());
  EXPECT_EQ(front.knee(), nullptr);
}

TEST(ParetoTest, DominanceIsStrict) {
  const ParetoEntry a{0, 10, 100};
  const ParetoEntry b{1, 10, 100};
  const ParetoEntry c{2, 11, 100};
  EXPECT_FALSE(a.dominates(b));  // equal on both: no strict improvement
  EXPECT_TRUE(a.dominates(c));
  EXPECT_FALSE(c.dominates(a));
}

}  // namespace
}  // namespace ifsyn::explore
