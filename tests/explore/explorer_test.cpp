// Engine-level tests, including the two hard guarantees the subsystem
// makes: (1) results are byte-identical regardless of thread count, and
// (2) the FLC reproduces Fig. 7's known optimum — under a 2000-clock
// CONV_R2 constraint the Pareto front holds only buswidths > 4, and the
// knee sits at 23 pins (16 data + 7 address), where the curves flatten.
#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include "explore/report.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/flc.hpp"

namespace ifsyn::explore {
namespace {

using suite::FlcCalibration;

ExploreOptions flc_options() {
  ExploreOptions options;
  options.compute_cycles_override = {
      {"EVAL_R3", FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", FlcCalibration::kConvR2ComputeCycles},
  };
  options.max_execution_clocks = {
      {"CONV_R2", FlcCalibration::kConvR2MaxClocks}};
  return options;
}

TEST(ExplorerTest, FlcReproducesFig7Optimum) {
  spec::System system = suite::make_flc_kernel();
  Explorer explorer(system, flc_options());
  Result<ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();

  ASSERT_FALSE(result->front.empty());
  for (const ParetoEntry& entry : result->front.entries()) {
    EXPECT_GT(result->result_for(entry).point.width, 4)
        << "the 2000-clock CONV_R2 constraint admits only widths > 4";
  }
  const ParetoEntry* knee = result->front.knee();
  ASSERT_NE(knee, nullptr);
  // Fig. 7: no improvement beyond 23 pins (16 data + 7 address bits).
  EXPECT_EQ(result->result_for(*knee).point.width, 23);
  EXPECT_EQ(result->result_for(*knee).data_pins, 23);
  EXPECT_EQ(knee->worst_case_clocks,
            FlcCalibration::kEvalR3ComputeCycles + 2 * 128);
}

TEST(ExplorerTest, ResultsAreIdenticalAcrossThreadCounts) {
  spec::System system = suite::make_flc_kernel();
  ExploreOptions options = flc_options();
  options.space.protocols = {spec::ProtocolKind::kFullHandshake,
                             spec::ProtocolKind::kHalfHandshake,
                             spec::ProtocolKind::kFixedDelay};
  options.space.alternative_groupings = true;
  options.top_k = 3;  // exercise the sim-validation phase too

  std::string reference_markdown;
  std::string reference_json;
  for (int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    Explorer explorer(system, options);
    Result<ExplorationResult> result = explorer.run();
    ASSERT_TRUE(result.is_ok()) << result.status();
    const std::string markdown =
        render_exploration_markdown(system, options, *result);
    const std::string json =
        render_exploration_json(system, options, *result);
    if (threads == 1) {
      reference_markdown = markdown;
      reference_json = json;
      continue;
    }
    EXPECT_EQ(markdown, reference_markdown)
        << "markdown differs at " << threads << " threads";
    EXPECT_EQ(json, reference_json)
        << "JSON differs at " << threads << " threads";
  }
}

TEST(ExplorerTest, ValidatedSurvivorsAreEquivalentInTheSim) {
  spec::System system = suite::make_flc_kernel();
  ExploreOptions options = flc_options();
  options.threads = 4;
  options.top_k = 8;
  Explorer explorer(system, options);
  Result<ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();

  ASSERT_FALSE(result->validated.empty());
  EXPECT_LE(result->validated.size(), 8u);
  for (std::size_t index : result->validated) {
    const PointResult& point = result->points[index];
    EXPECT_TRUE(point.validated);
    EXPECT_TRUE(point.sim_ok) << "width " << point.point.width;
    EXPECT_TRUE(point.equivalent) << "width " << point.point.width;
    EXPECT_GT(point.simulated_clocks, 0u);
  }
}

TEST(ExplorerTest, MemoizationCollapsesOverlappingGroupings) {
  spec::System system = suite::make_flc_kernel();
  ExploreOptions options = flc_options();
  options.max_execution_clocks.clear();
  // per-accessor and per-channel produce the same {ch1}, {ch2} groups, so
  // beyond plan dedup, every shared group estimate is computed once.
  options.space.alternative_groupings = true;
  Explorer explorer(system, options);
  Result<ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->stats.cache_misses, 0u);
  // The two plans cover 3 distinct groups over at most 23 widths each.
  EXPECT_LE(result->stats.cache_misses, 3u * 23u);
  EXPECT_EQ(result->stats.total_points,
            result->stats.pruned_points + result->stats.evaluated_points);
}

TEST(ExplorerTest, ConstraintOnUnknownProcessIsRejected) {
  spec::System system = suite::make_flc_kernel();
  ExploreOptions options;
  options.max_execution_clocks = {{"NO_SUCH_PROCESS", 100}};
  Explorer explorer(system, options);
  EXPECT_EQ(explorer.run().status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplorerTest, EthernetCoprocessorExploresEndToEnd) {
  spec::System system = suite::make_ethernet_coprocessor();

  // As grouped, EBUS carries three saturating channels and fails Eq. 1 at
  // every width — the paper's cue to split the bus. The exploration's
  // grouping dimension has to discover that on its own.
  ExploreOptions merged;
  Explorer merged_explorer(system, merged);
  Result<ExplorationResult> merged_result = merged_explorer.run();
  ASSERT_TRUE(merged_result.is_ok()) << merged_result.status();
  EXPECT_TRUE(merged_result->front.empty());
  EXPECT_EQ(merged_result->stats.feasible_points, 0u);

  ExploreOptions options;
  options.space.alternative_groupings = true;
  options.threads = 4;
  options.top_k = 1;
  Explorer explorer(system, options);
  Result<ExplorationResult> result = explorer.run();
  ASSERT_TRUE(result.is_ok()) << result.status();
  ASSERT_FALSE(result->front.empty());
  for (const ParetoEntry& entry : result->front.entries()) {
    EXPECT_NE(result->result_for(entry).grouping_name, "as-grouped");
  }
  ASSERT_EQ(result->validated.size(), 1u);
  const PointResult& best = result->points[result->validated[0]];
  EXPECT_TRUE(best.sim_ok);
  EXPECT_TRUE(best.equivalent);
}

}  // namespace
}  // namespace ifsyn::explore
