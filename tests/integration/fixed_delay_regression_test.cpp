// Regression coverage for the fixed-delay rate-modeling bug: the rate
// model used to default `fixed_delay_cycles` to 2, so every fixed-delay
// bus with a different per-word delay was priced at the default -- wide
// enough to look feasible when it was not. These tests pin the corrected
// arithmetic at a configuration where the delay flips Eq. 1 feasibility,
// and check that the bus generator and the explorer agree on it.
#include <gtest/gtest.h>

#include "bus/bus_generator.hpp"
#include "estimate/rate_model.hpp"
#include "explore/explorer.hpp"
#include "partition/partitioner.hpp"
#include "spec/analysis.hpp"
#include "spec/system.hpp"

namespace ifsyn {
namespace {

using namespace spec;

/// Two processes on M1, each writing one 8-bit variable on M2 once per
/// activation: two single-word write channels sharing bus "B". With
/// compute pinned at 3 cycles, an 8-bit fixed-delay bus is feasible at
/// delay 2 (rate 4 >= demand 3.2) and infeasible at delay 4
/// (rate 2 < demand ~2.29) -- the flip the old default hid.
System make_two_writer_system() {
  System s("fixed_delay_regression");
  s.add_variable(Variable("V1", Type::bits(8)));
  s.add_variable(Variable("V2", Type::bits(8)));

  Process p1;
  p1.name = "P1";
  p1.body.push_back(assign("V1", lit(42)));
  s.add_process(std::move(p1));

  Process p2;
  p2.name = "P2";
  p2.body.push_back(assign("V2", lit(7)));
  s.add_process(std::move(p2));

  partition::ModuleAssignment m1{"M1", {"P1", "P2"}, {}};
  partition::ModuleAssignment m2{"M2", {}, {"V1", "V2"}};
  EXPECT_TRUE(partition::apply_partition(s, {m1, m2}).is_ok());
  EXPECT_TRUE(partition::group_all_channels(s, "B").is_ok());
  EXPECT_TRUE(annotate_channel_accesses(s).is_ok());
  return s;
}

constexpr long long kComputeCycles = 3;

TEST(FixedDelayRegression, BusRateUsesTheActualDelay) {
  EXPECT_DOUBLE_EQ(estimate::bus_rate(8, ProtocolKind::kFixedDelay, 2), 4.0);
  // Pre-fix this returned 4.0 as well -- the delay parameter was silently
  // defaulted to 2 at every call site.
  EXPECT_DOUBLE_EQ(estimate::bus_rate(8, ProtocolKind::kFixedDelay, 4), 2.0);
  EXPECT_DOUBLE_EQ(estimate::bus_rate(8, ProtocolKind::kFixedDelay, 8), 1.0);
}

TEST(FixedDelayRegression, DelayFlipsWidthFeasibility) {
  System s = make_two_writer_system();
  estimate::PerformanceEstimator estimator(s);
  estimator.set_compute_cycles("P1", kComputeCycles);
  estimator.set_compute_cycles("P2", kComputeCycles);
  bus::BusGenerator generator(s, estimator);
  const BusGroup& bus = *s.find_bus("B");

  bus::BusGenOptions options;
  options.protocol = ProtocolKind::kFixedDelay;
  options.min_width = 8;
  options.max_width = 8;

  options.fixed_delay_cycles = 2;
  bus::WidthEvaluation fast = generator.evaluate_width(bus, 8, options);
  EXPECT_DOUBLE_EQ(fast.bus_rate, 4.0);
  EXPECT_TRUE(fast.feasible);
  Result<bus::BusGenResult> fast_gen = generator.generate(bus, options);
  ASSERT_TRUE(fast_gen.is_ok()) << fast_gen.status();
  EXPECT_EQ(fast_gen->selected_width, 8);

  options.fixed_delay_cycles = 4;
  bus::WidthEvaluation slow = generator.evaluate_width(bus, 8, options);
  EXPECT_DOUBLE_EQ(slow.bus_rate, 2.0);
  EXPECT_GT(slow.sum_average_rates, slow.bus_rate);
  EXPECT_FALSE(slow.feasible);
  Result<bus::BusGenResult> slow_gen = generator.generate(bus, options);
  ASSERT_FALSE(slow_gen.is_ok());
  EXPECT_EQ(slow_gen.status().code(), StatusCode::kInfeasible);
}

TEST(FixedDelayRegression, ExplorerAgreesWithBusGenerator) {
  System s = make_two_writer_system();

  explore::ExploreOptions options;
  options.space.protocols = {ProtocolKind::kFixedDelay};
  options.space.min_width = 8;
  options.space.max_width = 8;
  options.compute_cycles_override = {{"P1", kComputeCycles},
                                     {"P2", kComputeCycles}};

  options.space.fixed_delay_cycles = 2;
  {
    explore::Explorer explorer(s, options);
    Result<explore::ExplorationResult> result = explorer.run();
    ASSERT_TRUE(result.is_ok()) << result.status();
    bool any_feasible = false;
    for (const explore::PointResult& point : result->points) {
      any_feasible |= point.feasible;
    }
    EXPECT_TRUE(any_feasible);
  }

  options.space.fixed_delay_cycles = 4;
  {
    explore::Explorer explorer(s, options);
    Result<explore::ExplorationResult> result = explorer.run();
    ASSERT_TRUE(result.is_ok()) << result.status();
    // The single enumerated point must be recognized as infeasible --
    // whether the Eq. 1 pruner skips it or full evaluation rejects it.
    for (const explore::PointResult& point : result->points) {
      EXPECT_FALSE(point.feasible)
          << "width " << point.point.width << " delay "
          << point.point.fixed_delay_cycles
          << " accepted by the explorer but rejected by the bus generator";
    }
  }
}

}  // namespace
}  // namespace ifsyn
