// End-to-end runs of the paper's three case studies (Sec. 5): partition ->
// bus generation -> protocol generation -> co-simulation, checking both
// functional equivalence and the concrete computed outputs.
#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/flc.hpp"

namespace ifsyn {
namespace {

using namespace spec;

/// Synthesize `system` in place with arbitration (the suites have
/// concurrent masters) and return the report.
core::SynthesisReport synthesize(System& system) {
  core::SynthesisOptions options;
  options.arbitrate = true;
  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> report = synth.run(system);
  EXPECT_TRUE(report.is_ok()) << report.status();
  return report.is_ok() ? *report : core::SynthesisReport{};
}

// ---- Answering machine ----

TEST(SuiteEndToEndTest, AnsweringMachineOriginalBehavior) {
  System system = suite::make_answering_machine();
  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("status").get().to_uint(), 1u);
  EXPECT_EQ(run.interpreter->value_of("msg_len").get().to_uint(), 192u);
  EXPECT_EQ(run.interpreter->value_of("msg_mem").at(0).to_uint(), 7u);
  EXPECT_EQ(run.interpreter->value_of("msg_mem").at(191).to_uint(),
            static_cast<std::uint64_t>((13 * 191 + 7) % 256));
  long long played = 0;
  for (int i = 0; i < 256; ++i) played += (7 * i + 1) % 256;
  EXPECT_EQ(run.interpreter->value_of("PLAYED").get().to_int(), played);
}

TEST(SuiteEndToEndTest, AnsweringMachineSynthesisAndEquivalence) {
  System original = suite::make_answering_machine();
  System refined = original.clone("am_refined");
  core::SynthesisReport report = synthesize(refined);

  // The synthesizer may split the group if the aggregate demand violates
  // Eq. 1 at every width; either way every produced bus must be real.
  ASSERT_GE(report.buses.size(), 1u);
  for (const auto& bus : report.buses) {
    EXPECT_GT(bus.generation.selected_width, 0) << bus.bus;
  }

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 5'000'000);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "" : eq->mismatches[0]);
}

// ---- Ethernet coprocessor ----

TEST(SuiteEndToEndTest, EthernetOriginalBehavior) {
  System system = suite::make_ethernet_coprocessor();
  sim::SimulationRun run = sim::simulate(system);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("reg_file").at(0).to_int(),
            suite::EthernetExpected::frame_checksum());
  EXPECT_EQ(run.interpreter->value_of("reg_file").at(1).to_uint(), 256u);
  EXPECT_EQ(run.interpreter->value_of("XSUM").get().to_int(),
            suite::EthernetExpected::transmit_checksum());
  EXPECT_EQ(run.interpreter->value_of("xmit_buf").at(3).to_uint(),
            static_cast<std::uint64_t>(
                suite::EthernetExpected::frame_byte(3) ^ 255));
}

TEST(SuiteEndToEndTest, EthernetSynthesisAndEquivalence) {
  System original = suite::make_ethernet_coprocessor();
  System refined = original.clone("eth_refined");
  core::SynthesisReport report = synthesize(refined);
  ASSERT_GE(report.buses.size(), 1u);

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 5'000'000);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "" : eq->mismatches[0]);
}

// ---- Fuzzy logic controller (full) ----

TEST(SuiteEndToEndTest, FlcFullOriginalComputesExpectedOutput) {
  System system = suite::make_flc_full();
  sim::SimulationRun run = sim::simulate(system, 5'000'000);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  EXPECT_EQ(run.interpreter->value_of("CTRL_OUT").get().to_int(),
            suite::flc_expected_ctrl_out());
  for (const auto& proc : run.result.processes) {
    EXPECT_TRUE(proc.completed) << proc.name;
  }
}

TEST(SuiteEndToEndTest, FlcFullSynthesisAndEquivalence) {
  System original = suite::make_flc_full();
  System refined = original.clone("flc_refined");
  core::SynthesisReport report = synthesize(refined);
  ASSERT_GE(report.buses.size(), 1u);

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 20'000'000);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "" : eq->mismatches[0]);
  // Arbitration was exercised: some process had to wait for the bus.
  std::uint64_t total_wait = 0;
  for (const auto& proc : eq->refined.processes) {
    total_wait += proc.bus_wait_cycles;
  }
  EXPECT_GT(total_wait, 0u);
}

TEST(SuiteEndToEndTest, FlcKernelRefinedTimingScalesWithWidth) {
  // Wider buses finish the same work sooner -- Fig. 7 observed in the
  // simulator rather than the estimator.
  std::uint64_t previous_time = ~std::uint64_t{0};
  for (int width : {4, 8, 23}) {
    System system = suite::make_flc_kernel();
    system.find_bus("B")->width = width;
    protocol::ProtocolGenOptions options;
    options.arbitrate = true;
    protocol::ProtocolGenerator generator(options);
    ASSERT_TRUE(generator.generate_all(system).is_ok());
    sim::SimulationRun run = sim::simulate(system, 10'000'000);
    ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
    EXPECT_LT(run.result.end_time, previous_time) << "width " << width;
    previous_time = run.result.end_time;
  }
}

}  // namespace
}  // namespace ifsyn
