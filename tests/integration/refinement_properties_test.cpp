// Property-style sweeps over protocol generation: for a grid of
// (bus width, protocol, message shape) the refined system must stay
// functionally equivalent to the original -- the paper's simulatability
// claim quantified over the design space rather than one example.
#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"
#include "suite/fig3_example.hpp"

namespace ifsyn {
namespace {

using namespace spec;

/// A parameterized producer/consumer system: P writes `elements` entries
/// of `data_bits` each into remote array A and reads them back into a
/// checksum, exercising both channel directions with configurable
/// message shapes.
System make_roundtrip_system(int data_bits, int elements) {
  System s("roundtrip");
  s.add_variable(Variable("A", Type::array(Type::bits(data_bits), elements)));
  s.add_variable(Variable("CHECK", Type::integer(64)));

  Process p;
  p.name = "P";
  p.locals.emplace_back("V", Type::integer(32));
  const std::int64_t mask = (1LL << std::min(data_bits, 30)) - 1;
  p.body = {
      for_stmt("i", lit(0), lit(elements - 1),
               {assign(lv_idx("A", var("i")),
                       mod(add(mul(var("i"), lit(37)), lit(11)),
                           lit(mask + 1)))}),
      for_stmt("i", lit(0), lit(elements - 1),
               {
                   assign("V", aref("A", var("i"))),
                   assign("CHECK", add(var("CHECK"), var("V"))),
               }),
  };
  s.add_process(std::move(p));

  Status status = partition::apply_partition(
      s, {partition::ModuleAssignment{"M1", {"P"}, {"CHECK"}},
          partition::ModuleAssignment{"M2", {}, {"A"}}});
  EXPECT_TRUE(status.is_ok()) << status;
  status = partition::group_all_channels(s, "B");
  EXPECT_TRUE(status.is_ok()) << status;
  return s;
}

struct RefinementCase {
  ProtocolKind protocol;
  int width;
  int data_bits;
  int elements;
};

std::string case_name(const ::testing::TestParamInfo<RefinementCase>& info) {
  const RefinementCase& c = info.param;
  std::string proto;
  switch (c.protocol) {
    case ProtocolKind::kFullHandshake: proto = "full"; break;
    case ProtocolKind::kHalfHandshake: proto = "half"; break;
    case ProtocolKind::kFixedDelay: proto = "fixed"; break;
    case ProtocolKind::kHardwiredPort: proto = "wired"; break;
  }
  return proto + "_w" + std::to_string(c.width) + "_d" +
         std::to_string(c.data_bits) + "_n" + std::to_string(c.elements);
}

class RefinementEquivalence
    : public ::testing::TestWithParam<RefinementCase> {};

TEST_P(RefinementEquivalence, RefinedMatchesOriginal) {
  const RefinementCase& c = GetParam();
  System original = make_roundtrip_system(c.data_bits, c.elements);
  System refined = original.clone("refined");
  refined.find_bus("B")->width = c.width;

  protocol::ProtocolGenOptions options;
  options.protocol = c.protocol;
  options.arbitrate = false;  // single master: no contention possible
  protocol::ProtocolGenerator generator(options);
  ASSERT_TRUE(generator.generate_all(refined).is_ok());

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 10'000'000);
  ASSERT_TRUE(eq.is_ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << (eq->mismatches.empty() ? "ok" : eq->mismatches[0]);
}

INSTANTIATE_TEST_SUITE_P(
    WidthSweepFullHandshake, RefinementEquivalence,
    ::testing::Values(
        RefinementCase{ProtocolKind::kFullHandshake, 1, 8, 5},
        RefinementCase{ProtocolKind::kFullHandshake, 3, 8, 5},
        RefinementCase{ProtocolKind::kFullHandshake, 8, 8, 5},
        RefinementCase{ProtocolKind::kFullHandshake, 5, 16, 6},
        RefinementCase{ProtocolKind::kFullHandshake, 16, 16, 6},
        RefinementCase{ProtocolKind::kFullHandshake, 23, 16, 6},
        RefinementCase{ProtocolKind::kFullHandshake, 7, 23, 4},
        RefinementCase{ProtocolKind::kFullHandshake, 32, 23, 4}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    ProtocolSweep, RefinementEquivalence,
    ::testing::Values(
        RefinementCase{ProtocolKind::kHalfHandshake, 4, 12, 5},
        RefinementCase{ProtocolKind::kHalfHandshake, 12, 12, 5},
        RefinementCase{ProtocolKind::kFixedDelay, 4, 12, 5},
        RefinementCase{ProtocolKind::kFixedDelay, 13, 12, 5},
        RefinementCase{ProtocolKind::kHardwiredPort, 0, 12, 5},
        RefinementCase{ProtocolKind::kHardwiredPort, 0, 24, 3}),
    case_name);

/// The timing side of the same sweep: the refined run's duration must be
/// at least the word-count lower bound implied by the protocol timing.
TEST(RefinementTimingTest, FullHandshakeRespectsTwoCyclesPerWord) {
  const int width = 4;
  const int data_bits = 16;
  const int elements = 4;
  System refined = make_roundtrip_system(data_bits, elements);
  refined.find_bus("B")->width = width;
  protocol::ProtocolGenerator generator;
  ASSERT_TRUE(generator.generate_all(refined).is_ok());
  sim::SimulationRun run = sim::simulate(refined, 1'000'000);
  ASSERT_TRUE(run.result.status.is_ok()) << run.result.status;
  // Writes: elements * ceil((addr+data)/w) words; reads: request +
  // response words. Every word needs >= 2 cycles on the wire, but a
  // server's trailing settle cycle overlaps the requester's next word at
  // each role swap, so the observable lower bound is 2*words minus one
  // cycle per message; the upper sanity bound is 3 cycles/word.
  const int addr_bits = 2;
  const long long write_words =
      elements * ((addr_bits + data_bits + width - 1) / width);
  const long long read_words =
      elements * ((addr_bits + width - 1) / width +
                  (data_bits + width - 1) / width);
  const long long words = write_words + read_words;
  const long long messages = 2 * elements;
  EXPECT_GE(run.result.end_time,
            static_cast<std::uint64_t>(2 * words - messages));
  EXPECT_LE(run.result.end_time, static_cast<std::uint64_t>(3 * words));
}

}  // namespace
}  // namespace ifsyn
