// Reproduction checks for every figure/table in the paper's evaluation,
// as assertions (the bench binaries print the full rows; these tests pin
// the headline numbers so regressions fail loudly).
#include <gtest/gtest.h>

#include "bus/bus_generator.hpp"
#include "bus/channel_trace.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

namespace ifsyn {
namespace {

using namespace spec;
using suite::FlcCalibration;

struct FlcFixture {
  System system;
  estimate::PerformanceEstimator estimator;
  bus::BusGenerator generator;

  FlcFixture()
      : system(suite::make_flc_kernel()),
        estimator(system),
        generator(system, estimator) {
    EXPECT_TRUE(annotate_channel_accesses(system).is_ok());
    estimator.set_compute_cycles("EVAL_R3",
                                 FlcCalibration::kEvalR3ComputeCycles);
    estimator.set_compute_cycles("CONV_R2",
                                 FlcCalibration::kConvR2ComputeCycles);
  }
};

// ---- Figure 2 -------------------------------------------------------

TEST(Fig2Test, AverageRatesAndMergedBusRate) {
  bus::ChannelTrace a{"A", 4, {{0, 8, "A1"}, {2, 8, "A2"}}};
  bus::ChannelTrace b{"B", 4, {{0, 16, "B1"}, {1, 16, "B2"}, {3, 16, "B3"}}};
  EXPECT_DOUBLE_EQ(a.average_rate(), 4.0);
  EXPECT_DOUBLE_EQ(b.average_rate(), 12.0);
  EXPECT_DOUBLE_EQ(bus::required_bus_rate({a, b}), 16.0);
}

// ---- Figure 7 -------------------------------------------------------

TEST(Fig7Test, CurvesDecreaseMonotonically) {
  FlcFixture f;
  for (const char* proc : {"EVAL_R3", "CONV_R2"}) {
    long long prev = f.estimator.execution_time(
        proc, 1, ProtocolKind::kFullHandshake, 2);
    for (int w = 2; w <= 32; ++w) {
      long long cur =
          f.estimator.execution_time(proc, w, ProtocolKind::kFullHandshake, 2);
      EXPECT_LE(cur, prev);
      prev = cur;
    }
  }
}

TEST(Fig7Test, PlateauBeyond23Pins) {
  // "bus widths greater than 23 pins do not yield any further
  // improvements in the performance as the data transfer cannot be
  // parallelized any further."
  FlcFixture f;
  for (const char* proc : {"EVAL_R3", "CONV_R2"}) {
    const long long at23 =
        f.estimator.execution_time(proc, 23, ProtocolKind::kFullHandshake, 2);
    const long long at24 =
        f.estimator.execution_time(proc, 24, ProtocolKind::kFullHandshake, 2);
    const long long at22 =
        f.estimator.execution_time(proc, 22, ProtocolKind::kFullHandshake, 2);
    EXPECT_EQ(at23, at24) << proc;
    EXPECT_GT(at22, at23) << proc;  // 23 is exactly where it flattens
  }
}

TEST(Fig7Test, ConvR2ConstraintCrossesAtWidth4) {
  // "if process CONV_R2 has a maximum execution time constraint of 2000
  // clocks, then only buswidths greater than 4 bits will be considered."
  FlcFixture f;
  for (int w = 1; w <= 4; ++w) {
    EXPECT_GT(f.estimator.execution_time("CONV_R2", w,
                                         ProtocolKind::kFullHandshake, 2),
              FlcCalibration::kConvR2MaxClocks)
        << "width " << w;
  }
  for (int w = 5; w <= 23; ++w) {
    EXPECT_LE(f.estimator.execution_time("CONV_R2", w,
                                         ProtocolKind::kFullHandshake, 2),
              FlcCalibration::kConvR2MaxClocks)
        << "width " << w;
  }
}

TEST(Fig7Test, EvalR3IsSlowerThanConvR2) {
  // Fig. 7 draws EVAL_R3 above CONV_R2 at every width (it computes more
  // per element).
  FlcFixture f;
  for (int w = 1; w <= 32; ++w) {
    EXPECT_GT(f.estimator.execution_time("EVAL_R3", w,
                                         ProtocolKind::kFullHandshake, 2),
              f.estimator.execution_time("CONV_R2", w,
                                         ProtocolKind::kFullHandshake, 2));
  }
}

// ---- Figure 8 -------------------------------------------------------

struct Fig8Design {
  const char* name;
  std::vector<bus::BusConstraint> constraints;
  int expected_width;
  double expected_rate;
  int expected_reduction_percent;  // rounded, data lines only
};

std::vector<Fig8Design> fig8_designs() {
  using namespace ifsyn::bus;
  return {
      {"A", {min_peak_rate("ch2", 10, 10)}, 20, 10.0, 57},
      {"B",
       {min_peak_rate("ch2", 10, 2), min_bus_width(14, 1),
        max_bus_width(17, 1)},
       18, 9.0, 61},
      {"C",
       {min_peak_rate("ch2", 10, 1), min_bus_width(16, 5),
        max_bus_width(16, 5)},
       16, 8.0, 65},
  };
}

TEST(Fig8Test, ThreeDesignPointsMatchPaper) {
  FlcFixture f;
  for (const Fig8Design& design : fig8_designs()) {
    bus::BusGenOptions options;
    options.constraints = design.constraints;
    Result<bus::BusGenResult> result =
        f.generator.generate(*f.system.find_bus("B"), options);
    ASSERT_TRUE(result.is_ok()) << design.name << ": " << result.status();
    EXPECT_EQ(result->selected_width, design.expected_width) << design.name;
    EXPECT_DOUBLE_EQ(result->selected_bus_rate, design.expected_rate)
        << design.name;
    EXPECT_EQ(result->total_channel_bits, 46) << design.name;
    const int reduction_percent = static_cast<int>(
        result->interconnect_reduction * 100.0 + 0.5);
    EXPECT_EQ(reduction_percent, design.expected_reduction_percent)
        << design.name;
  }
}

TEST(Fig8Test, ReductionsBracketPaperValues) {
  // The paper prints 56/61/66 %; our exact arithmetic gives 56.5/60.9/65.2
  // (within 1 point -- the paper's own rounding is inconsistent).
  FlcFixture f;
  const double reductions[3] = {1 - 20.0 / 46, 1 - 18.0 / 46, 1 - 16.0 / 46};
  const int paper[3] = {56, 61, 66};
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(reductions[i] * 100, paper[i], 1.0);
  }
}

}  // namespace
}  // namespace ifsyn
