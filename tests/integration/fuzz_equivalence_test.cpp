// Randomized refinement fuzzing: generate random multi-process systems
// (random variable shapes, random access patterns, random loops and
// branches), refine them with a random protocol at a random buswidth, and
// require co-simulation equivalence. One seed = one reproducible system;
// any failure prints its seed.
//
// Construction invariants that keep the ORIGINAL deterministic (so
// equivalence is well-defined): each remote variable belongs to exactly
// one process (no cross-process data races); processes only read
// variables they wrote earlier in program order. The *bus* is still
// heavily contended -- all processes transfer concurrently through the
// arbiter -- which is exactly the part being fuzzed.
// Reproducing a failure: the assertion message names the seed; re-run the
// binary with IFSYN_FUZZ_SEED=<seed> to make iteration 0 regenerate that
// exact system. IFSYN_FUZZ_ITERS=<n> widens the sweep (default 40).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "check/checker.hpp"
#include "check/trace_miner.hpp"
#include "core/equivalence.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"

namespace ifsyn {
namespace {

using namespace spec;

/// Base seed: IFSYN_FUZZ_SEED when set, else 0. Iteration i fuzzes
/// base + i, so pointing the env var at a failing seed replays it first.
std::uint64_t fuzz_base_seed() {
  static const std::uint64_t base = [] {
    const char* env = std::getenv("IFSYN_FUZZ_SEED");
    return env ? std::strtoull(env, nullptr, 10) : 0ull;
  }();
  return base;
}

/// Iteration count: IFSYN_FUZZ_ITERS when set (min 1), else 40.
int fuzz_iterations() {
  static const int iters = [] {
    const char* env = std::getenv("IFSYN_FUZZ_ITERS");
    if (!env) return 40;
    const int parsed = std::atoi(env);
    return parsed > 0 ? parsed : 1;
  }();
  return iters;
}

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                     hi - lo + 1));
  }
  bool chance(int percent) { return range(1, 100) <= percent; }

 private:
  std::uint64_t state_;
};

struct OwnedVariable {
  std::string name;
  Type type = Type::bits(1);
  bool written = false;  // by its owner, earlier in program order
};

/// Append a random statement that keeps the invariants. Returns true if
/// it emitted anything.
void emit_random_statement(Rng& rng, Block& body,
                           std::vector<OwnedVariable>& vars,
                           int depth, int* loop_counter) {
  const int kind = rng.range(0, 5);
  switch (kind) {
    case 0: {  // local compute
      body.push_back(assign(
          "ACC", add(mul(var("ACC"), lit(rng.range(2, 5))),
                     lit(rng.range(1, 9)))));
      return;
    }
    case 1: {  // think time
      body.push_back(wait_for(rng.range(1, 4)));
      return;
    }
    case 2: {  // write one of my variables
      OwnedVariable& v = vars[static_cast<std::size_t>(
          rng.range(0, static_cast<int>(vars.size()) - 1))];
      if (v.type.is_array()) {
        const std::string loop_var = "i" + std::to_string((*loop_counter)++);
        const int upper = rng.range(1, v.type.array_size() - 1);
        body.push_back(for_stmt(
            loop_var, lit(0), lit(upper),
            {assign(lv_idx(v.name, var(loop_var)),
                    add(var(loop_var), lit(rng.range(0, 200))))}));
      } else {
        body.push_back(assign(v.name, add(var("ACC"), lit(rng.range(0, 99)))));
      }
      v.written = true;
      return;
    }
    case 3: {  // read back one of my written variables
      std::vector<OwnedVariable*> readable;
      for (auto& v : vars) {
        if (v.written) readable.push_back(&v);
      }
      if (readable.empty()) {
        body.push_back(assign("ACC", add(var("ACC"), lit(1))));
        return;
      }
      OwnedVariable& v = *readable[static_cast<std::size_t>(rng.range(
          0, static_cast<int>(readable.size()) - 1))];
      if (v.type.is_array()) {
        const std::string loop_var = "i" + std::to_string((*loop_counter)++);
        body.push_back(for_stmt(
            loop_var, lit(0), lit(rng.range(1, v.type.array_size() - 1)),
            {assign("TMP", aref(v.name, var(loop_var))),
             assign("ACC", add(var("ACC"), var("TMP")))}));
      } else {
        body.push_back(assign("TMP", var(v.name)));
        body.push_back(assign("ACC", add(var("ACC"), var("TMP"))));
      }
      return;
    }
    case 4: {  // branch on the accumulator
      if (depth >= 2) {
        body.push_back(assign("ACC", add(var("ACC"), lit(3))));
        return;
      }
      Block then_body, else_body;
      emit_random_statement(rng, then_body, vars, depth + 1, loop_counter);
      emit_random_statement(rng, else_body, vars, depth + 1, loop_counter);
      body.push_back(if_stmt(eq(mod(var("ACC"), lit(2)), lit(0)),
                             std::move(then_body), std::move(else_body)));
      return;
    }
    default: {  // compute loop with a nested access
      if (depth >= 2) {
        body.push_back(wait_for(1));
        return;
      }
      const std::string loop_var = "i" + std::to_string((*loop_counter)++);
      Block loop_body;
      emit_random_statement(rng, loop_body, vars, depth + 1, loop_counter);
      body.push_back(for_stmt(loop_var, lit(0), lit(rng.range(1, 3)),
                              std::move(loop_body)));
      return;
    }
  }
}

struct FuzzSystem {
  System system;
  int largest_message = 1;
};

FuzzSystem make_random_system(std::uint64_t seed) {
  Rng rng(seed);
  FuzzSystem out{System("fuzz_" + std::to_string(seed)), 1};
  System& s = out.system;

  const int process_count = rng.range(1, 3);
  std::vector<std::string> process_names;
  partition::ModuleAssignment m1{"M1", {}, {}};
  partition::ModuleAssignment m2{"M2", {}, {}};

  int loop_counter = 0;
  for (int p = 0; p < process_count; ++p) {
    // 1-2 remote variables owned by this process.
    std::vector<OwnedVariable> owned;
    const int var_count = rng.range(1, 2);
    for (int v = 0; v < var_count; ++v) {
      OwnedVariable ov;
      ov.name = "V" + std::to_string(p) + "_" + std::to_string(v);
      const int width = rng.range(4, 24);
      ov.type = rng.chance(50) ? Type::array(Type::bits(width),
                                             rng.range(4, 32))
                               : Type::bits(width);
      out.largest_message = std::max(
          out.largest_message,
          ov.type.scalar_width() + ov.type.address_bits());
      s.add_variable(Variable(ov.name, ov.type));
      m2.variables.push_back(ov.name);
      owned.push_back(std::move(ov));
    }

    Process proc;
    proc.name = "P" + std::to_string(p);
    proc.locals.emplace_back("ACC", Type::integer(32),
                             Value::integer(rng.range(0, 9)));
    proc.locals.emplace_back("TMP", Type::integer(32));
    const int stmt_count = rng.range(4, 10);
    for (int i = 0; i < stmt_count; ++i) {
      emit_random_statement(rng, proc.body, owned, 0, &loop_counter);
    }
    process_names.push_back(proc.name);
    m1.processes.push_back(proc.name);
    s.add_process(std::move(proc));
  }

  Status status = partition::apply_partition(s, {m1, m2});
  EXPECT_TRUE(status.is_ok()) << status;
  // A seed might generate a pure-compute system with no remote accesses;
  // the test skips those (no channels to group).
  if (!s.channels().empty()) {
    status = partition::group_all_channels(s, "FB");
    EXPECT_TRUE(status.is_ok()) << status;
  }
  return out;
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, RandomSystemSurvivesRefinement) {
  const std::uint64_t seed =
      fuzz_base_seed() + static_cast<std::uint64_t>(GetParam());
  FuzzSystem fuzz = make_random_system(seed);
  if (fuzz.system.channels().empty()) {
    GTEST_SKIP() << "seed " << seed << " generated no remote accesses";
  }

  Rng rng(seed * 7919 + 17);
  System refined = fuzz.system.clone("refined");
  refined.find_bus("FB")->width = rng.range(1, fuzz.largest_message);

  protocol::ProtocolGenOptions options;
  const int protocol_pick = rng.range(0, 2);
  options.protocol = protocol_pick == 0   ? ProtocolKind::kFullHandshake
                     : protocol_pick == 1 ? ProtocolKind::kHalfHandshake
                                          : ProtocolKind::kFixedDelay;
  options.fixed_delay_cycles = rng.range(2, 3);
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  Status status = generator.generate_all(refined);
  ASSERT_TRUE(status.is_ok()) << "seed " << seed << ": " << status;

  // The static checker must accept everything protocol generation emits.
  // Errors only: the fuzzed width is random, so an Eq. 1 rate warning is
  // a legitimate outcome, but a structural or FSM error never is.
  const check::CheckReport check_report = check::run_checks(refined);
  EXPECT_EQ(check_report.errors(), 0)
      << "seed " << seed << ":\n" << check_report.to_string();

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(fuzz.system, refined, 10'000'000);
  ASSERT_TRUE(eq.is_ok()) << "seed " << seed << ": " << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << "seed " << seed << " width " << refined.find_bus("FB")->width
      << " protocol " << protocol_kind_name(options.protocol) << ": "
      << (eq->mismatches.empty() ? "?" : eq->mismatches[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range(0, fuzz_iterations()));

// ---- engine differential testing ------------------------------------------
// Every fuzzed system (original and its refined form) runs four ways —
// the optimized bytecode VM (IFSYN_SIM_OPT=1), the unoptimized VM
// (IFSYN_SIM_OPT=0), the AST reference interpreter, and the AOT native
// engine — with tracing on, and all four runs must agree byte-for-byte:
// status, end time, every committed signal change, per-process
// statistics, and the final value of every system variable. This is the
// primary correctness harness for the VM's lowering pass, the
// superinstruction optimizer, and the native C++ emitter. (Where the
// toolchain is unavailable the native leg degrades to a VM run by
// contract, which the oracle then verifies trivially — the dedicated
// no-toolchain test in tests/sim/native_engine_test.cpp pins down that
// degradation explicitly.)

/// Forces IFSYN_SIM_OPT for one run; restores the previous value (CI runs
/// whole suites under =0, which must survive this test).
class ScopedSimOpt {
 public:
  explicit ScopedSimOpt(const char* value) {
    const char* old = std::getenv("IFSYN_SIM_OPT");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv("IFSYN_SIM_OPT", value, 1);
  }
  ~ScopedSimOpt() {
    if (had_) {
      setenv("IFSYN_SIM_OPT", saved_.c_str(), 1);
    } else {
      unsetenv("IFSYN_SIM_OPT");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

/// Run `system` on one engine with tracing enabled.
sim::SimulationRun run_engine(const System& system, sim::Engine engine) {
  return sim::simulate(system, 10'000'000, /*trace=*/true, /*obs=*/{},
                       engine);
}

void expect_two_runs_identical(const System& system,
                               const sim::SimulationRun& lhs,
                               const char* lhs_name,
                               const sim::SimulationRun& rhs,
                               const char* rhs_name) {
  SCOPED_TRACE(::testing::Message() << lhs_name << " vs " << rhs_name);
  ASSERT_EQ(lhs.result.status.is_ok(), rhs.result.status.is_ok())
      << lhs_name << ": " << lhs.result.status << " " << rhs_name << ": "
      << rhs.result.status;
  if (!lhs.result.status.is_ok()) return;  // both failed the same way
  EXPECT_EQ(lhs.result.end_time, rhs.result.end_time);

  // Process results.
  ASSERT_EQ(lhs.result.processes.size(), rhs.result.processes.size());
  for (std::size_t i = 0; i < lhs.result.processes.size(); ++i) {
    const sim::ProcessStats& pv = lhs.result.processes[i];
    const sim::ProcessStats& pa = rhs.result.processes[i];
    EXPECT_EQ(pv.name, pa.name);
    EXPECT_EQ(pv.completed, pa.completed) << pv.name;
    EXPECT_EQ(pv.finish_time, pa.finish_time) << pv.name;
    EXPECT_EQ(pv.activations, pa.activations) << pv.name;
    EXPECT_EQ(pv.bus_wait_cycles, pa.bus_wait_cycles) << pv.name;
  }

  // Committed signal changes (waveform identity).
  const auto& tv = lhs.kernel->trace();
  const auto& ta = rhs.kernel->trace();
  ASSERT_EQ(tv.size(), ta.size());
  for (std::size_t i = 0; i < tv.size(); ++i) {
    EXPECT_TRUE(tv[i].time == ta[i].time && tv[i].delta == ta[i].delta &&
                tv[i].key == ta[i].key && tv[i].value == ta[i].value)
        << "trace entry " << i << ": " << lhs_name << " "
        << tv[i].key.to_string() << "@" << tv[i].time << "." << tv[i].delta
        << " " << rhs_name << " " << ta[i].key.to_string() << "@"
        << ta[i].time << "." << ta[i].delta;
  }

  // Final variable state.
  for (const auto& v : system.variables()) {
    EXPECT_EQ(lhs.interpreter->value_of(v->name),
              rhs.interpreter->value_of(v->name))
        << "variable " << v->name;
  }
}

void expect_runs_identical(const System& system, std::uint64_t seed,
                           const char* label,
                           bool mine_conformance = false) {
  sim::SimulationRun vm_opt = [&] {
    ScopedSimOpt opt("1");
    return run_engine(system, sim::Engine::kVm);
  }();
  sim::SimulationRun vm_ref = [&] {
    ScopedSimOpt opt("0");
    return run_engine(system, sim::Engine::kVm);
  }();
  const sim::SimulationRun ast = run_engine(system, sim::Engine::kAst);
  sim::SimulationRun native = [&] {
    ScopedSimOpt opt("1");
    return run_engine(system, sim::Engine::kNative);
  }();
  SCOPED_TRACE(::testing::Message()
               << "seed " << seed << " (" << label << ")");
  expect_two_runs_identical(system, vm_opt, "vm+opt", ast, "ast");
  expect_two_runs_identical(system, vm_opt, "vm+opt", vm_ref, "vm");
  expect_two_runs_identical(system, vm_opt, "vm+opt", native, "native");

  // For refined systems, close the second loop: the trace each engine
  // committed must conform to the statically extracted protocol
  // automata. An engine bug that merely *skews* the waveform the same
  // way on every engine slips past the byte-for-byte oracle above but
  // not past the mined-vs-static diff.
  if (!mine_conformance) return;
  const struct {
    const sim::SimulationRun* run;
    const char* name;
  } legs[] = {{&vm_opt, "vm+opt"},
              {&vm_ref, "vm"},
              {&ast, "ast"},
              {&native, "native"}};
  for (const auto& leg : legs) {
    if (!leg.run->result.status.is_ok()) continue;
    const check::ConformanceReport mined =
        check::mine_and_diff(system, leg.run->kernel->trace());
    EXPECT_TRUE(mined.clean())
        << leg.name << " trace fails conformance:\n" << mined.to_string();
  }
}

class FuzzEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEngineDifferential, EnginesAgreeByteForByte) {
  const std::uint64_t seed =
      fuzz_base_seed() + static_cast<std::uint64_t>(GetParam());
  FuzzSystem fuzz = make_random_system(seed);
  expect_runs_identical(fuzz.system, seed, "original");

  if (fuzz.system.channels().empty()) return;  // nothing to refine

  Rng rng(seed * 7919 + 17);
  System refined = fuzz.system.clone("refined");
  refined.find_bus("FB")->width = rng.range(1, fuzz.largest_message);

  protocol::ProtocolGenOptions options;
  const int protocol_pick = rng.range(0, 2);
  options.protocol = protocol_pick == 0   ? ProtocolKind::kFullHandshake
                     : protocol_pick == 1 ? ProtocolKind::kHalfHandshake
                                          : ProtocolKind::kFixedDelay;
  options.fixed_delay_cycles = rng.range(2, 3);
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  Status status = generator.generate_all(refined);
  ASSERT_TRUE(status.is_ok()) << "seed " << seed << ": " << status;
  expect_runs_identical(refined, seed, "refined", /*mine_conformance=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEngineDifferential,
                         ::testing::Range(0, fuzz_iterations()));

}  // namespace
}  // namespace ifsyn
